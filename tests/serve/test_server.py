"""The service end to end: cache hits, dedup, long-poll, restart."""

import threading

import pytest

from repro.serve import ServeClient, ServeRequestError, ServeServer

JOB = {"benchmark": "gzip", "scheme": "base", "width": 4,
       "length": 800, "warmup": 1500, "seed": 3}


@pytest.fixture
def server(tmp_path):
    srv = ServeServer(str(tmp_path / "serve"), backend="scalar",
                      batch_window=0.02).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout=10.0)


def _run(client, job=JOB, timeout=60.0):
    response = client.submit(dict(job))
    if response["state"] not in ("done", "failed"):
        return client.wait(response["id"], timeout=timeout)
    return client.status(response["id"])


def test_submit_wait_result(client):
    record = _run(client)
    assert record["state"] == "done"
    result = client.result(record["id"])
    assert result["stats"]["committed"] == JOB["length"]
    assert result["cost"]["backend"] == "scalar"


def test_second_submission_is_cache_hit(client):
    first = _run(client)
    again = client.submit(dict(JOB))
    assert again["id"] == first["id"]
    assert again["state"] == "done"
    assert again.get("cached") == 1
    assert (client.result(again["id"])["stats"]
            == client.result(first["id"])["stats"])
    metrics = client.metrics()
    assert metrics["simulations"] == 1
    assert metrics["cache_hits"] == 1


def test_concurrent_duplicates_one_simulation(client):
    ids = []

    def submit():
        ids.append(client.submit(dict(JOB))["id"])

    threads = [threading.Thread(target=submit) for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(ids)) == 1
    client.wait(ids[0], timeout=60)
    metrics = client.metrics()
    assert metrics["simulations"] == 1
    assert metrics["inflight_dedup"] + metrics["cache_hits"] == 4


def test_distinct_jobs_distinct_results(client):
    a = _run(client)
    b = _run(client, {**JOB, "scheme": "PRI-refcount+lazy"})
    assert a["id"] != b["id"]
    stats_a = client.result(a["id"])["stats"]
    stats_b = client.result(b["id"])["stats"]
    assert stats_a["cycles"] != stats_b["cycles"]


def test_bad_submissions_are_400(client):
    with pytest.raises(ServeRequestError):
        client.submit({"benchmark": "nope"})
    with pytest.raises(ServeRequestError):
        client.submit({"benchmark": "gzip", "width": 5})
    # A 400 must not poison the service.
    assert _run(client)["state"] == "done"


def test_unknown_job_id_is_404(client):
    with pytest.raises(ServeRequestError) as exc:
        client.status("no-such-id")
    assert exc.value.status == 404


def test_rid_replay_answers_from_cache(client):
    response = client._post("/submit", {"job": dict(JOB), "rid": "fixed"})
    replay = client._post("/submit", {"job": dict(JOB), "rid": "fixed"})
    assert replay["id"] == response["id"]
    assert replay.get("replayed") == 1
    assert client.metrics()["submissions"] == 1


def test_metrics_and_cost_accounting(client):
    _run(client)
    metrics = client.metrics()
    assert metrics["backend"] == "scalar"
    assert metrics["cycles_simulated"] > 0
    assert metrics["instructions_committed"] == JOB["length"]
    assert metrics["sim_wall_seconds"] > 0
    assert metrics["cache_entries"] == 1
    assert metrics["jobs_done"] == 1


def test_gc_endpoint(client):
    _run(client)
    _run(client, {**JOB, "seed": 11})
    response = client.gc(max_entries=1)
    assert response["removed"] == 1
    assert response["entries"] == 1


def test_restart_resumes_queued_jobs(tmp_path):
    root = str(tmp_path / "serve")
    # Queue with a huge batch window so nothing executes before "crash".
    srv = ServeServer(root, backend="scalar", batch_window=30.0).start()
    client = ServeClient(srv.url)
    acked = [client.submit(dict(JOB))["id"],
             client.submit({**JOB, "seed": 5})["id"]]
    # SIGKILL equivalent: drop the process state without draining.
    srv.httpd.shutdown()
    srv.httpd.server_close()

    srv2 = ServeServer(root, backend="scalar", batch_window=0.02).start()
    try:
        client2 = ServeClient(srv2.url)
        assert srv2.state.metrics["recovered_jobs"] == 2
        for job_id in acked:
            assert client2.wait(job_id, timeout=60)["state"] == "done"
    finally:
        srv2.stop()


def test_restart_answers_done_jobs_from_cache(tmp_path):
    root = str(tmp_path / "serve")
    srv = ServeServer(root, backend="scalar", batch_window=0.02).start()
    client = ServeClient(srv.url)
    first = _run(client)
    stats = client.result(first["id"])["stats"]
    srv.stop()

    srv2 = ServeServer(root, backend="scalar", batch_window=0.02).start()
    try:
        client2 = ServeClient(srv2.url)
        again = client2.submit(dict(JOB))
        assert again["state"] == "done"
        assert client2.result(again["id"])["stats"] == stats
        assert client2.metrics()["simulations"] == 0
    finally:
        srv2.stop()


def test_vector_backend_bit_identical_to_scalar(tmp_path):
    pytest.importorskip("numpy")
    scalar = ServeServer(str(tmp_path / "a"), backend="scalar",
                         batch_window=0.02).start()
    vector = ServeServer(str(tmp_path / "b"), backend="vector",
                         batch_window=0.1).start()
    try:
        sweep = [{**JOB, "scheme": "PRI-refcount+lazy", "regs": r}
                 for r in (48, 64)]
        sc, vc = ServeClient(scalar.url), ServeClient(vector.url)
        scalar_stats = [sc.result(_run(sc, j)["id"])["stats"]
                        for j in sweep]
        vector_ids = [vc.submit(dict(j))["id"] for j in sweep]
        vector_stats = [vc.result(vc.wait(i, timeout=60)["id"])["stats"]
                        for i in vector_ids]
        assert scalar_stats == vector_stats
    finally:
        scalar.stop()
        vector.stop()


def test_failed_job_reports_and_can_retry(tmp_path):
    root = str(tmp_path / "serve")
    srv = ServeServer(root, backend="scalar", batch_window=0.02).start()
    try:
        client = ServeClient(srv.url)
        # An impossibly tight cycle limit: the watchdog fails the job.
        doomed = {**JOB, "max_cycles": 10}
        record = _run(client, doomed)
        assert record["state"] == "failed"
        assert record["error"]["error_type"] == "SimulationError"
        assert client.metrics()["jobs_failed"] == 1
        # A failed id is terminal but resubmittable: it re-queues.
        retry = client.submit(dict(doomed))
        assert retry["state"] == "queued"
        assert client.wait(retry["id"], timeout=60)["state"] == "failed"
    finally:
        srv.stop()
