"""Job specs, keys, validation, and the durable job journal."""

import os

import pytest

from repro.experiments.journal import cell_key
from repro.farm.lease import cid_of
from repro.serve.jobs import (
    JobError,
    JobJournal,
    JobSpec,
    parse_job,
)
from repro.store.errors import DigestMismatch, MalformedRecord


# ------------------------------------------------------------------ specs

def test_key_matches_sweep_cell_key():
    spec = JobSpec(benchmark="gzip", scheme="base", width=4)
    assert spec.key() == cell_key("gzip", "base", 4, spec.run_spec(),
                                 config=spec.config())


def test_job_id_is_hash_of_key():
    spec = JobSpec(benchmark="gzip")
    assert spec.job_id() == cid_of(spec.key())


def test_identical_specs_share_id_distinct_do_not():
    a = JobSpec(benchmark="gzip", scheme="base")
    b = JobSpec(benchmark="gzip", scheme="base")
    c = JobSpec(benchmark="gzip", scheme="base", seed=2)
    assert a.job_id() == b.job_id()
    assert a.job_id() != c.job_id()


def test_regs_override_changes_key():
    base = JobSpec(benchmark="gzip")
    swept = JobSpec(benchmark="gzip", regs=56)
    assert base.key() != swept.key()
    cfg = swept.config()
    assert cfg.int_phys_regs == 56 and cfg.fp_phys_regs == 56


def test_batch_key_groups_coalescable_jobs():
    a = JobSpec(benchmark="gzip", regs=48)
    b = JobSpec(benchmark="mcf", regs=64)
    c = JobSpec(benchmark="gzip", seed=9)
    assert a.batch_key() == b.batch_key()
    assert a.batch_key() != c.batch_key()


def test_to_dict_round_trips_through_parse():
    spec = JobSpec(benchmark="gzip", scheme="ER", width=8, length=3000,
                   warmup=5000, seed=3, max_cycles=100000, regs=72)
    assert parse_job(spec.to_dict()) == spec


# ------------------------------------------------------------- validation

@pytest.mark.parametrize("body", [
    "not-a-dict",
    {},
    {"benchmark": "nope"},
    {"benchmark": "gzip", "scheme": "nope"},
    {"benchmark": "gzip", "width": 6},
    {"benchmark": "gzip", "length": 0},
    {"benchmark": "gzip", "length": "6000"},
    {"benchmark": "gzip", "seed": True},
    {"benchmark": "gzip", "regs": 0},
    {"benchmark": "gzip", "surprise": 1},
])
def test_parse_job_rejects(body):
    with pytest.raises(JobError):
        parse_job(body)


def test_parse_job_defaults():
    spec = parse_job({"benchmark": "gzip"})
    assert spec == JobSpec(benchmark="gzip")


# ---------------------------------------------------------------- journal

def _event(jid, state, key="k", **extra):
    return {"id": jid, "key": key, "state": state, "ts": 1.0, **extra}


def test_journal_records_and_replays(tmp_path):
    path = str(tmp_path / "jobs.json")
    journal = JobJournal(path)
    journal.record(_event("j1", "queued", spec={"benchmark": "gzip"}))
    journal.record(_event("j1", "running"), durable=False)
    journal.record(_event("j1", "done"))
    journal.record(_event("j2", "queued"))
    replayed = JobJournal(path)
    latest = replayed.latest()
    assert latest["j1"]["state"] == "done"
    assert latest["j2"]["state"] == "queued"
    assert replayed.events[0]["spec"] == {"benchmark": "gzip"}


def test_journal_rejects_bad_records(tmp_path):
    journal = JobJournal(str(tmp_path / "jobs.json"))
    with pytest.raises(ValueError):
        journal.record({"id": "j1", "state": "queued"})  # no key/ts
    with pytest.raises(ValueError):
        journal.record(_event("j1", "sideways"))


def test_journal_salvages_torn_tail(tmp_path):
    path = str(tmp_path / "jobs.json")
    journal = JobJournal(path)
    journal.record(_event("j1", "queued"))
    journal.record(_event("j2", "queued"))
    with open(path, "ab") as fh:
        fh.write(b'{"torn')  # power loss mid-append
    replayed = JobJournal(path)
    assert replayed.salvaged is not None
    assert set(replayed.latest()) == {"j1", "j2"}
    # The salvage compacted the tail away: a third load is clean.
    clean = JobJournal(path)
    assert clean.salvaged is None


def test_journal_interior_damage_is_typed_error(tmp_path):
    path = str(tmp_path / "jobs.json")
    journal = JobJournal(path)
    for i in range(4):
        journal.record(_event(f"j{i}", "queued"))
    with open(path, "r+b") as fh:
        fh.seek(os.path.getsize(path) // 2)
        fh.write(b"ZZ")
    with pytest.raises((DigestMismatch, MalformedRecord)):
        JobJournal(path)


def test_journal_fsck_recognized_and_salvaged(tmp_path):
    from repro.store.fsck import fsck_tree

    path = str(tmp_path / "jobs.json")
    journal = JobJournal(path)
    for i in range(4):
        journal.record(_event(f"j{i}", "queued"))
    report = fsck_tree(str(tmp_path))
    assert [f.kind for f in report.findings] == ["serve-job-journal"]
    assert report.findings[0].status == "ok"
    # Interior damage: fsck classifies, repairs to the valid prefix.
    with open(path, "r+b") as fh:
        fh.seek(os.path.getsize(path) - 20)
        fh.write(b"ZZ")
    repair = fsck_tree(str(tmp_path), repair=True)
    assert not repair.unrepaired
    assert JobJournal(path).latest()  # loadable again
