"""Result cache: addressing, durability, corruption healing, GC."""

import os

import pytest

from repro.serve.cache import CacheEntry, ResultCache, cache_address

STATS = {"cycles": 1000, "committed": 400}
COST = {"backend": "scalar", "cycles": 1000, "instructions": 400,
        "wall_seconds": 0.1, "batch_jobs": 1}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def test_miss_then_hit(cache):
    assert cache.get("k1") is None
    cache.put("k1", STATS, COST)
    entry = cache.get("k1")
    assert isinstance(entry, CacheEntry)
    assert entry.stats == STATS
    assert entry.cost == COST
    assert cache.has("k1")
    assert len(cache) == 1


def test_address_is_stable_and_filename_safe():
    addr = cache_address("gzip|base|w4|n6000|u20000|s1|c0|a0|deadbeef")
    assert addr == cache_address("gzip|base|w4|n6000|u20000|s1|c0|a0|deadbeef")
    assert len(addr) == 32
    assert all(c in "0123456789abcdef" for c in addr)


def test_distinct_keys_distinct_entries(cache):
    cache.put("k1", STATS, COST)
    cache.put("k2", {"cycles": 2}, COST)
    assert cache.get("k1").stats == STATS
    assert cache.get("k2").stats == {"cycles": 2}
    assert len(cache) == 2


def test_overwrite_replaces(cache):
    cache.put("k1", STATS, COST)
    cache.put("k1", {"cycles": 7}, COST)
    assert cache.get("k1").stats == {"cycles": 7}
    assert len(cache) == 1


def test_corrupt_entry_is_quarantined_miss(cache):
    cache.put("k1", STATS, COST)
    path = cache.path_for("k1")
    with open(path, "r+b") as fh:
        fh.seek(os.path.getsize(path) // 2)
        fh.write(b"XXXX")
    assert cache.get("k1") is None  # miss, not an exception
    assert not os.path.exists(path)  # quarantined away
    # The cache heals: a fresh put serves again.
    cache.put("k1", STATS, COST)
    assert cache.get("k1").stats == STATS


def test_key_collision_never_served(cache):
    cache.put("k1", STATS, COST)
    # Simulate a misfiled entry: k2's address holding k1's payload.
    os.replace(cache.path_for("k1"), cache.path_for("other-key"))
    assert cache.get("other-key") is None
    assert os.path.exists(cache.path_for("other-key"))  # intact: kept


def test_gc_max_entries_keeps_newest(cache, monkeypatch):
    now = [1000.0]
    monkeypatch.setattr("repro.serve.cache.time.time", lambda: now[0])
    for i in range(5):
        now[0] += 10
        cache.put(f"k{i}", {"i": i}, COST)
    removed = cache.gc(max_entries=2)
    assert removed == 3
    assert not cache.has("k0") and not cache.has("k2")
    assert cache.has("k3") and cache.has("k4")


def test_gc_max_age(cache, monkeypatch):
    now = [1000.0]
    monkeypatch.setattr("repro.serve.cache.time.time", lambda: now[0])
    cache.put("old", STATS, COST)
    now[0] += 500
    cache.put("new", STATS, COST)
    now[0] += 10
    assert cache.gc(max_age=100) == 1
    assert not cache.has("old")
    assert cache.has("new")


def test_gc_noop_without_bounds(cache):
    cache.put("k1", STATS, COST)
    assert cache.gc() == 0
    assert cache.has("k1")
