"""fsck engine details and the ``python -m repro.store`` CLI."""

import os
import subprocess
import sys

import pytest

from repro.core.snapshot import save_snapshot
from repro.store import atomic_write_text, corrupt, fsck_tree
from repro.store.__main__ import main


def _snapshot(root, name="snap.ckpt"):
    path = os.path.join(root, name)
    save_snapshot({"config_digest": "c" * 16, "rob": [], "pad": "x" * 300}, path)
    return path


# ============================================================= the engine


def test_clean_tree_reports_ok(tmp_path):
    _snapshot(str(tmp_path))
    report = fsck_tree(str(tmp_path))
    assert report.scanned == 1 and report.ok == 1
    assert not report.corrupt and not report.unrepaired
    assert "1 file(s) scanned, 1 ok" in report.summary()


def test_single_file_scan(tmp_path):
    path = _snapshot(str(tmp_path))
    assert fsck_tree(path).ok == 1
    corrupt(path, "bit-flip")
    report = fsck_tree(path)
    assert [f.error_type for f in report.corrupt] == ["DigestMismatch"]


def test_report_only_never_touches_disk(tmp_path):
    path = _snapshot(str(tmp_path))
    corrupt(path, "bit-flip")
    before = open(path, "rb").read()
    fsck_tree(str(tmp_path))  # no repair flag
    assert open(path, "rb").read() == before


def test_quarantine_dirs_are_not_rescanned(tmp_path):
    """Known-bad bytes in <name>.quarantine/ must not be re-reported —
    otherwise every later fsck of the tree fails forever."""
    path = _snapshot(str(tmp_path))
    corrupt(path, "bit-flip")
    assert not fsck_tree(str(tmp_path), repair=True).unrepaired
    again = fsck_tree(str(tmp_path))
    assert not again.corrupt
    assert not any(".quarantine" in f.path for f in again.findings)


def test_legacy_plain_json_snapshot_passes(tmp_path):
    """Pre-envelope artifacts are verified as legacy JSON, not flagged."""
    path = os.path.join(str(tmp_path), "old.ckpt")
    atomic_write_text(
        path, '{"config_digest": "abc", "rob": [], "cycle": 7}'
    )
    report = fsck_tree(str(tmp_path))
    assert report.ok == 1
    assert report.findings[0].kind == "legacy-snapshot"


def test_nested_dirs_are_walked(tmp_path):
    deep = tmp_path / "a" / "b"
    deep.mkdir(parents=True)
    path = _snapshot(str(deep))
    corrupt(path, "truncate-half")
    report = fsck_tree(str(tmp_path))
    assert [f.path for f in report.corrupt] == [path]


def test_progress_callback_sees_every_finding(tmp_path):
    _snapshot(str(tmp_path), "a.ckpt")
    _snapshot(str(tmp_path), "b.ckpt")
    seen = []
    fsck_tree(str(tmp_path), progress=seen.append)
    assert sorted(f.path for f in seen) == sorted(
        os.path.join(str(tmp_path), n) for n in ("a.ckpt", "b.ckpt")
    )


# ================================================================= CLI


def test_cli_clean_exit_zero(tmp_path, capsys):
    _snapshot(str(tmp_path))
    assert main(["fsck", str(tmp_path)]) == 0
    assert "0 problem(s) remaining" in capsys.readouterr().out


def test_cli_corrupt_exit_one_and_names_the_file(tmp_path, capsys):
    path = _snapshot(str(tmp_path))
    corrupt(path, "bit-flip")
    assert main(["fsck", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert path in out and "DigestMismatch" in out


def test_cli_repair_fixes_and_exits_zero(tmp_path, capsys):
    path = _snapshot(str(tmp_path))
    corrupt(path, "tmp-leftover")
    assert main(["fsck", "--repair", str(tmp_path)]) == 0
    assert "deleted" in capsys.readouterr().out
    assert not os.path.exists(path + ".partial.tmp")
    assert os.path.exists(path)


def test_cli_repair_command_equals_fsck_repair(tmp_path):
    path = _snapshot(str(tmp_path))
    corrupt(path, "bit-flip")
    assert main(["repair", str(tmp_path)]) == 0
    assert os.path.isdir(path + ".quarantine")


def test_cli_repair_delete(tmp_path):
    path = _snapshot(str(tmp_path))
    corrupt(path, "bit-flip")
    assert main(["repair", "--delete", str(tmp_path)]) == 0
    assert not os.path.exists(path)
    assert not os.path.isdir(path + ".quarantine")


def test_cli_delete_requires_repair_mode(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["fsck", "--delete", str(tmp_path)])
    assert excinfo.value.code == 2


def test_cli_quiet_prints_only_summary(tmp_path, capsys):
    path = _snapshot(str(tmp_path))
    corrupt(path, "bit-flip")
    main(["fsck", "-q", str(tmp_path)])
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 1 and out[0].startswith("fsck ")


def test_module_is_executable(tmp_path):
    """``python -m repro.store fsck`` works as documented in INTERNALS."""
    _snapshot(str(tmp_path))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = {**os.environ, "PYTHONPATH": os.path.join(repo_root, "src")}
    proc = subprocess.run(
        [sys.executable, "-m", "repro.store", "fsck", str(tmp_path)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "1 ok" in proc.stdout
