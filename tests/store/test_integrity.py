"""Envelope framing and checksummed-line records: every damage class
maps to its typed error."""

import json

import pytest

from repro.store import (
    DigestMismatch,
    MalformedRecord,
    SchemaMismatch,
    TruncatedArtifact,
    append_checked_line,
    checked_line,
    read_checked_lines,
    read_json_artifact,
    verify_envelope,
    write_json_artifact,
)

_PAYLOAD = {"answer": 42, "nested": {"values": list(range(40))}}


def _write(tmp_path, name="a.json", kind="unit-test", schema=1, payload=None):
    path = str(tmp_path / name)
    write_json_artifact(path, kind, schema, payload or _PAYLOAD)
    return path


# ------------------------------------------------------------- envelope


def test_envelope_roundtrip(tmp_path):
    path = _write(tmp_path)
    value, meta = read_json_artifact(path, "unit-test")
    assert value == _PAYLOAD
    assert not meta.legacy
    assert meta.kind == "unit-test" and meta.schema == 1
    assert verify_envelope(path).digest == meta.digest


def test_envelope_wrong_kind_is_schema_mismatch(tmp_path):
    path = _write(tmp_path, kind="machine-snapshot")
    with pytest.raises(SchemaMismatch) as excinfo:
        read_json_artifact(path, "fuzz-reproducer")
    assert excinfo.value.found == "machine-snapshot"


def test_envelope_schema_enforced_when_requested(tmp_path):
    path = _write(tmp_path, schema=7)
    value, meta = read_json_artifact(path, "unit-test")  # no expectation: ok
    assert meta.schema == 7
    with pytest.raises(SchemaMismatch):
        read_json_artifact(path, "unit-test", expected_schema=8)


def test_envelope_truncation_detected(tmp_path):
    path = _write(tmp_path)
    raw = open(path, "rb").read()
    for keep in (len(raw) // 2, len(raw) - 5):
        open(path, "wb").write(raw[:keep])
        with pytest.raises(TruncatedArtifact):
            read_json_artifact(path, "unit-test")


def test_envelope_empty_file_is_truncated(tmp_path):
    path = str(tmp_path / "empty.json")
    open(path, "w").close()
    with pytest.raises(TruncatedArtifact):
        read_json_artifact(path, "unit-test")


def test_envelope_every_single_byte_flip_detected(tmp_path):
    """Acceptance: corrupting ANY single byte yields a typed
    ArtifactError — walk the whole file, flipping one bit at a time."""
    path = _write(tmp_path, payload={"k": "v" * 64})
    raw = open(path, "rb").read()
    for offset in range(len(raw)):
        damaged = bytearray(raw)
        damaged[offset] ^= 0x04
        open(path, "wb").write(bytes(damaged))
        with pytest.raises((TruncatedArtifact, DigestMismatch,
                            MalformedRecord, SchemaMismatch)):
            read_json_artifact(path, "unit-test")


def test_envelope_trailing_garbage_detected(tmp_path):
    path = _write(tmp_path)
    with open(path, "ab") as fh:
        fh.write(b"junk from a concurrent writer")
    with pytest.raises(MalformedRecord):
        read_json_artifact(path, "unit-test")


def test_legacy_plain_json_reads_transparently(tmp_path):
    path = str(tmp_path / "legacy.json")
    with open(path, "w") as fh:
        json.dump(_PAYLOAD, fh)
    value, meta = read_json_artifact(path, "unit-test")
    assert value == _PAYLOAD
    assert meta.legacy and meta.digest is None


def test_legacy_corrupt_json_is_malformed_not_jsondecodeerror(tmp_path):
    path = str(tmp_path / "legacy.json")
    open(path, "w").write('{"truncated": [1, 2,')
    with pytest.raises(MalformedRecord):
        read_json_artifact(path, "unit-test")


# ------------------------------------------------------- checked lines


def test_checked_lines_roundtrip(tmp_path):
    path = str(tmp_path / "log")
    records = [{"n": i, "data": "x" * i} for i in range(10)]
    for record in records:
        append_checked_line(path, record)
    result = read_checked_lines(path)
    assert result.clean
    assert result.records == records


def test_checked_lines_torn_tail_salvages_prefix(tmp_path):
    path = str(tmp_path / "log")
    for i in range(5):
        append_checked_line(path, {"n": i})
    with open(path, "ab") as fh:
        fh.write(b'0123456789abcdef {"n": 5, "partial')  # crash mid-append
    result = read_checked_lines(path)
    assert not result.clean and result.torn_tail
    assert result.bad_line == 6
    assert [r["n"] for r in result.records] == [0, 1, 2, 3, 4]


def test_checked_lines_interior_damage_stops_prefix(tmp_path):
    path = str(tmp_path / "log")
    for i in range(5):
        append_checked_line(path, {"n": i})
    raw = open(path, "rb").read().split(b"\n")
    raw[2] = raw[2][:-3] + b"xyz"  # corrupt line 3's json body
    open(path, "wb").write(b"\n".join(raw))
    result = read_checked_lines(path)
    assert not result.clean and not result.torn_tail
    assert result.bad_line == 3
    assert [r["n"] for r in result.records] == [0, 1]


def test_checked_line_digest_is_order_sensitive():
    assert checked_line({"a": 1, "b": 2}) == checked_line({"b": 2, "a": 1})
    assert checked_line({"a": 1}) != checked_line({"a": 2})
