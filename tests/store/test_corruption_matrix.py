"""The corruption matrix (satellite of the artifact store): inject
every registered on-disk corruption into every artifact kind and assert

* the loader raises the documented *typed* ArtifactError (never a bare
  IndexError/KeyError/json.JSONDecodeError),
* append-style journals auto-salvage their valid prefix where torn,
* ``fsck`` detects 100% of the injected damage, and
* ``fsck --repair`` leaves a tree where everything still loads.
"""

import json
import os

import pytest

from repro.experiments.journal import SweepJournal
from repro.core.stats import SimStats
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.oracle.fuzz import FuzzSpec, load_reproducer, write_reproducer
from repro.store import (
    ArtifactError,
    DigestMismatch,
    MalformedRecord,
    TruncatedArtifact,
    corrupt,
    fsck_tree,
)
from repro.workloads.generator import generate_trace
from repro.workloads.serialize import load_trace, save_trace

# ======================================================= fixture builders


def _build_trace_v2(root):
    path = os.path.join(root, "t2.trace")
    save_trace(generate_trace("gzip", 40, seed=3, warmup=10), path)
    return path


def _build_trace_v1(root):
    """A legacy trace: the v2 layout minus the footer, under the v1
    magic — what pre-store builds wrote."""
    v2 = _build_trace_v2(root)
    lines = open(v2).read().splitlines(keepends=True)
    path = os.path.join(root, "t1.trace")
    with open(path, "w") as fh:
        fh.write(lines[0].replace("trace-v2", "trace-v1", 1))
        fh.writelines(lines[1:-1])  # drop the footer
    os.unlink(v2)
    return path


def _build_snapshot(root):
    path = os.path.join(root, "machine.ckpt")
    data = {
        "config_digest": "c" * 16, "rob": [], "cycle": 1234,
        "pad": ["deadbeef" * 8] * 12,  # push the damage offsets into the payload
    }
    save_snapshot(data, path)
    return path


def _build_reproducer(root):
    path = os.path.join(root, "repro.json")
    spec = FuzzSpec(
        seed=0, benchmark="gzip", length=600, warmup=1200, trace_seed=3,
        oracle_interval=64, audit_interval=256,
    )
    write_reproducer(spec, {"outcome": "clean", "pad": "x" * 400}, path)
    return path


def _build_journal(root):
    path = os.path.join(root, "sweep.json")
    journal = SweepJournal(path)
    for i in range(4):
        journal.record_ok(f"cell-{i}", SimStats())
    journal.record_error("cell-bad", {"error_type": "RuntimeError", "message": "x"})
    return path


_BUILDERS = {
    "trace-v2": _build_trace_v2,
    "trace-v1": _build_trace_v1,
    "snapshot": _build_snapshot,
    "reproducer": _build_reproducer,
    "journal": _build_journal,
}

_LOADERS = {
    "trace-v2": load_trace,
    "trace-v1": load_trace,
    "snapshot": load_snapshot,
    "reproducer": load_reproducer,
    "journal": SweepJournal,
}

# ============================================================ the matrix
#
# (artifact, corruption) -> what the loader must do:
#   an ArtifactError subclass  raise exactly that typed error
#   "salvage"                  journal loads; valid prefix kept; .salvaged set
#   "fresh"                    journal loads empty (zero-byte file)
#   "intact"                   artifact unharmed (damage hit a sibling)
#
# trace-v1 appears only under the corruptions its structural checks can
# see — it has no digest; that blindness (bit-flips pass!) is exactly
# why trace-v2 exists, and test_trace_v1_blind_spot pins it below.

MATRIX = {
    ("trace-v2", "truncate-half"): TruncatedArtifact,
    ("trace-v2", "truncate-tail"): DigestMismatch,
    ("trace-v2", "empty"): TruncatedArtifact,
    ("trace-v2", "bit-flip"): DigestMismatch,
    ("trace-v2", "zero-fill"): DigestMismatch,
    ("trace-v2", "torn-tail"): TruncatedArtifact,
    ("trace-v2", "tmp-leftover"): "intact",
    ("trace-v1", "truncate-half"): TruncatedArtifact,
    ("trace-v1", "empty"): TruncatedArtifact,
    ("trace-v1", "tmp-leftover"): "intact",
    ("snapshot", "truncate-half"): TruncatedArtifact,
    ("snapshot", "truncate-tail"): TruncatedArtifact,
    ("snapshot", "empty"): TruncatedArtifact,
    ("snapshot", "bit-flip"): DigestMismatch,
    ("snapshot", "zero-fill"): DigestMismatch,
    ("snapshot", "torn-tail"): MalformedRecord,
    ("snapshot", "tmp-leftover"): "intact",
    ("reproducer", "truncate-half"): TruncatedArtifact,
    ("reproducer", "truncate-tail"): TruncatedArtifact,
    ("reproducer", "empty"): TruncatedArtifact,
    ("reproducer", "bit-flip"): DigestMismatch,
    ("reproducer", "zero-fill"): DigestMismatch,
    ("reproducer", "torn-tail"): MalformedRecord,
    ("reproducer", "tmp-leftover"): "intact",
    ("journal", "truncate-half"): "salvage",
    ("journal", "truncate-tail"): "salvage",
    ("journal", "torn-tail"): "salvage",
    ("journal", "empty"): "fresh",
    ("journal", "bit-flip"): DigestMismatch,
    ("journal", "zero-fill"): DigestMismatch,
    ("journal", "tmp-leftover"): "intact",
}

_IDS = [f"{artifact}-{corruption}" for artifact, corruption in MATRIX]


@pytest.mark.parametrize(("artifact", "corruption"), list(MATRIX), ids=_IDS)
def test_loader_reaction(tmp_path, artifact, corruption):
    path = _BUILDERS[artifact](str(tmp_path))
    baseline_records = len(SweepJournal(path)) if artifact == "journal" else None
    corrupt(path, corruption)
    expect = MATRIX[(artifact, corruption)]
    loader = _LOADERS[artifact]
    if expect == "intact":
        loader(path)  # must not raise: only a .tmp sibling was dropped
    elif expect == "fresh":
        assert len(loader(path)) == 0
    elif expect == "salvage":
        journal = loader(path)
        assert journal.salvaged is not None
        assert len(journal) < baseline_records + 1  # header excluded from len
        # The salvage rewrote the file: a second open is clean.
        again = SweepJournal(path)
        assert again.salvaged is None
        assert len(again) == len(journal)
    else:
        with pytest.raises(expect) as excinfo:
            loader(path)
        assert isinstance(excinfo.value, ArtifactError)
        assert isinstance(excinfo.value, ValueError)  # legacy except-clauses


@pytest.mark.parametrize(("artifact", "corruption"), list(MATRIX), ids=_IDS)
def test_fsck_detects_every_injection(tmp_path, artifact, corruption):
    """Acceptance: ``python -m repro.store fsck`` detects 100% of the
    corruption matrix."""
    root = str(tmp_path)
    path = _BUILDERS[artifact](root)
    corrupt(path, corruption)
    report = fsck_tree(root)
    assert report.corrupt, (
        f"fsck missed {corruption} injected into {artifact}"
    )
    assert report.unrepaired  # report-only pass: nothing was fixed


def test_trace_v1_blind_spot(tmp_path):
    """A mid-file bit flip in a digest-less trace-v1 file parses into a
    *wrong but legal* trace — the silent-corruption mode trace-v2's
    footer digest closes.  If this test ever fails, v1 grew detection
    and the matrix above should be extended instead."""
    path = _build_trace_v1(str(tmp_path))
    lines = open(path).read().splitlines(keepends=True)
    fields = lines[10].split(" ")
    fields[4] = format(int(fields[4], 16) ^ 0x1, "x")  # flip a result bit
    lines[10] = " ".join(fields)
    open(path, "w").writelines(lines)
    load_trace(path)  # no error: that is the point

    v2 = os.path.join(str(tmp_path), "same.trace")
    save_trace(generate_trace("gzip", 40, seed=3, warmup=10), v2)
    lines = open(v2).read().splitlines(keepends=True)
    fields = lines[10].split(" ")
    fields[4] = format(int(fields[4], 16) ^ 0x1, "x")
    lines[10] = " ".join(fields)
    open(v2, "w").writelines(lines)
    with pytest.raises(DigestMismatch):  # v2 closes the blind spot
        load_trace(v2)


def test_fsck_repair_leaves_loadable_tree(tmp_path):
    """Acceptance: after ``fsck --repair`` every surviving artifact
    loads; unrecoverable ones are quarantined, leftovers deleted."""
    root = str(tmp_path)
    trace = _build_trace_v2(root)
    snapshot = _build_snapshot(root)
    reproducer = _build_reproducer(root)
    journal = _build_journal(root)
    healthy = os.path.join(root, "healthy.ckpt")
    save_snapshot({"config_digest": "c" * 16, "rob": []}, healthy)

    corrupt(trace, "bit-flip")        # unrecoverable -> quarantine
    corrupt(snapshot, "truncate-half")  # unrecoverable -> quarantine
    corrupt(reproducer, "tmp-leftover")  # sibling debris -> delete
    corrupt(journal, "zero-fill")     # append-style -> salvage prefix

    report = fsck_tree(root, repair=True)
    assert not report.unrepaired, report.summary()
    actions = {f.path: f.action for f in report.findings if f.action}
    assert actions[trace].startswith("quarantined:")
    assert actions[snapshot].startswith("quarantined:")
    assert actions[reproducer + ".partial.tmp"] == "deleted"
    assert actions[journal].startswith("salvaged:")

    # The quarantined bytes are preserved, not destroyed.
    assert os.path.isdir(trace + ".quarantine")
    assert not os.path.exists(trace)

    # Everything still on disk loads cleanly; a second fsck is quiet.
    assert load_reproducer(reproducer)["result"]["outcome"] == "clean"
    assert load_snapshot(healthy)["config_digest"] == "c" * 16
    salvaged = SweepJournal(journal)
    assert salvaged.salvaged is None and len(salvaged) >= 1
    clean = fsck_tree(root)
    assert not clean.corrupt, clean.summary()


def test_fsck_repair_delete_mode(tmp_path):
    root = str(tmp_path)
    path = _build_snapshot(root)
    corrupt(path, "bit-flip")
    report = fsck_tree(root, repair=True, delete=True)
    assert not report.unrepaired
    assert not os.path.exists(path)
    assert not os.path.isdir(path + ".quarantine")


def test_fsck_skips_foreign_files(tmp_path):
    """Files fsck does not recognize are reported as skipped and never
    touched, even in repair mode."""
    root = str(tmp_path)
    notes = os.path.join(root, "notes.txt")
    open(notes, "w").write("not an artifact\n")
    foreign = os.path.join(root, "foreign.json")
    with open(foreign, "w") as fh:
        json.dump({"some": "other tool's file"}, fh)
    report = fsck_tree(root, repair=True, delete=True)
    assert not report.corrupt
    assert os.path.exists(notes) and os.path.exists(foreign)
    assert all(f.status == "skipped" for f in report.findings)
