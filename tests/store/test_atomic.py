"""Crash-safe write and quarantine primitives."""

import os

import pytest

from repro.store import (
    TMP_SUFFIX,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    quarantine_path,
)


def test_atomic_write_creates_and_replaces(tmp_path):
    path = str(tmp_path / "a.txt")
    atomic_write_text(path, "one")
    assert open(path).read() == "one"
    atomic_write_text(path, "two")
    assert open(path).read() == "two"


def test_atomic_write_creates_parent_dirs(tmp_path):
    path = str(tmp_path / "deep" / "er" / "a.bin")
    atomic_write_bytes(path, b"\x00\x01")
    assert open(path, "rb").read() == b"\x00\x01"


def test_failed_write_leaves_original_and_no_debris(tmp_path):
    path = str(tmp_path / "a.txt")
    atomic_write_text(path, "original")
    with pytest.raises(RuntimeError):
        with atomic_writer(path) as handle:
            handle.write("partial garbage")
            raise RuntimeError("writer died")
    assert open(path).read() == "original"
    assert os.listdir(tmp_path) == ["a.txt"], "temp file must be cleaned up"


def test_temp_files_carry_recognizable_suffix(tmp_path):
    """The fsck leftover scan keys on TMP_SUFFIX; the writer must use it."""
    path = str(tmp_path / "a.txt")
    seen = []
    with atomic_writer(path) as handle:
        seen = [n for n in os.listdir(tmp_path) if n != "a.txt"]
        handle.write("x")
    assert seen and all(n.endswith(TMP_SUFFIX) for n in seen)


def test_quarantine_moves_file_aside(tmp_path):
    path = str(tmp_path / "bad.json")
    atomic_write_text(path, "junk")
    dest = quarantine_path(path)
    assert not os.path.exists(path)
    assert os.path.dirname(dest) == path + ".quarantine"
    assert open(dest).read() == "junk"


def test_quarantine_never_overwrites(tmp_path):
    path = str(tmp_path / "bad.json")
    dests = []
    for content in ("first", "second", "third"):
        atomic_write_text(path, content)
        dests.append(quarantine_path(path))
    assert len(set(dests)) == 3
    assert [open(d).read() for d in dests] == ["first", "second", "third"]
