"""Crash-safe write and quarantine primitives."""

import os

import pytest

from repro.store import (
    FSYNC_DIR_STATS,
    TMP_SUFFIX,
    add_fsync_dir_hook,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    create_exclusive_bytes,
    durable_replace,
    fsync_dir,
    quarantine_path,
    remove_file,
    remove_fsync_dir_hook,
    strict_fsync_dir,
)
from repro.store import atomic as atomic_mod


def test_atomic_write_creates_and_replaces(tmp_path):
    path = str(tmp_path / "a.txt")
    atomic_write_text(path, "one")
    assert open(path).read() == "one"
    atomic_write_text(path, "two")
    assert open(path).read() == "two"


def test_atomic_write_creates_parent_dirs(tmp_path):
    path = str(tmp_path / "deep" / "er" / "a.bin")
    atomic_write_bytes(path, b"\x00\x01")
    assert open(path, "rb").read() == b"\x00\x01"


def test_failed_write_leaves_original_and_no_debris(tmp_path):
    path = str(tmp_path / "a.txt")
    atomic_write_text(path, "original")
    with pytest.raises(RuntimeError):
        with atomic_writer(path) as handle:
            handle.write("partial garbage")
            raise RuntimeError("writer died")
    assert open(path).read() == "original"
    assert os.listdir(tmp_path) == ["a.txt"], "temp file must be cleaned up"


def test_temp_files_carry_recognizable_suffix(tmp_path):
    """The fsck leftover scan keys on TMP_SUFFIX; the writer must use it."""
    path = str(tmp_path / "a.txt")
    seen = []
    with atomic_writer(path) as handle:
        seen = [n for n in os.listdir(tmp_path) if n != "a.txt"]
        handle.write("x")
    assert seen and all(n.endswith(TMP_SUFFIX) for n in seen)


def test_quarantine_moves_file_aside(tmp_path):
    path = str(tmp_path / "bad.json")
    atomic_write_text(path, "junk")
    dest = quarantine_path(path)
    assert not os.path.exists(path)
    assert os.path.dirname(dest) == path + ".quarantine"
    assert open(dest).read() == "junk"


def test_quarantine_never_overwrites(tmp_path):
    path = str(tmp_path / "bad.json")
    dests = []
    for content in ("first", "second", "third"):
        atomic_write_text(path, content)
        dests.append(quarantine_path(path))
    assert len(set(dests)) == 3
    assert [open(d).read() for d in dests] == ["first", "second", "third"]


# ------------------------------------------------------- new primitives


def test_durable_replace_moves_and_survives(tmp_path):
    src = str(tmp_path / "a.tmp")
    dst = str(tmp_path / "a.json")
    atomic_write_text(src, "payload")
    durable_replace(src, dst)
    assert not os.path.exists(src)
    assert open(dst).read() == "payload"


def test_create_exclusive_bytes_is_mutual_exclusion(tmp_path):
    path = str(tmp_path / "c.lease")
    assert create_exclusive_bytes(path, b"winner")
    assert not create_exclusive_bytes(path, b"loser")
    assert open(path, "rb").read() == b"winner"


def test_remove_file_reports_presence(tmp_path):
    path = str(tmp_path / "x")
    atomic_write_text(path, "x")
    assert remove_file(path)
    assert not remove_file(path)
    assert not os.path.exists(path)


# ------------------------------------------- fsync_dir observability


def test_fsync_dir_counts_successes(tmp_path):
    FSYNC_DIR_STATS.reset()
    assert fsync_dir(str(tmp_path))
    assert (FSYNC_DIR_STATS.attempted, FSYNC_DIR_STATS.synced,
            FSYNC_DIR_STATS.skipped) == (1, 1, 0)


def test_fsync_dir_counts_and_reports_skips(tmp_path, monkeypatch):
    FSYNC_DIR_STATS.reset()
    calls = []

    def hook(directory, exc):
        calls.append((directory, exc))

    def refused(fd):
        raise OSError("directory fsync not supported")

    monkeypatch.setattr(atomic_mod.os, "fsync", refused)
    add_fsync_dir_hook(hook)
    try:
        assert not fsync_dir(str(tmp_path))
    finally:
        remove_fsync_dir_hook(hook)
    assert FSYNC_DIR_STATS.skipped_fsync == 1
    assert FSYNC_DIR_STATS.synced == 0
    assert calls and calls[0][0] == str(tmp_path)
    assert isinstance(calls[0][1], OSError)


def test_strict_mode_raises_on_skip(tmp_path, monkeypatch):
    def refused(fd):
        raise OSError("nope")

    monkeypatch.setattr(atomic_mod.os, "fsync", refused)
    with strict_fsync_dir():
        with pytest.raises(OSError):
            fsync_dir(str(tmp_path))
    # Outside the context the skip degrades gracefully again.
    assert not fsync_dir(str(tmp_path))


def test_strict_mode_restored_after_hook_exception(tmp_path, monkeypatch):
    # strict_fsync_dir() must restore the previous setting even when the
    # guarded block raises for unrelated reasons.
    with pytest.raises(RuntimeError):
        with strict_fsync_dir():
            raise RuntimeError("unrelated")
    FSYNC_DIR_STATS.reset()

    def refused(fd):
        raise OSError("nope")

    monkeypatch.setattr(atomic_mod.os, "fsync", refused)
    assert not fsync_dir(str(tmp_path))  # no raise: strict was restored


def test_atomic_write_durable_syncs_directory(tmp_path):
    FSYNC_DIR_STATS.reset()
    atomic_write_text(str(tmp_path / "a.txt"), "x")
    assert FSYNC_DIR_STATS.synced == 1
    atomic_write_text(str(tmp_path / "b.txt"), "y", durable=False)
    assert FSYNC_DIR_STATS.attempted == 1, "non-durable write must not fsync"
