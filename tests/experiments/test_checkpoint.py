"""Checkpointed cell execution and the v2 journal: digest-bearing cell
keys, schema-version enforcement, and crash-resume mid-simulation."""

import dataclasses
import json
import os

import pytest

from repro.experiments import RunSpec, SweepJournal, cell_key, run_one
from repro.experiments.journal import _VERSION
from repro.experiments.runner import (
    _run_checkpointed,
    checkpoint_path,
    resolve_config,
)
from repro.workloads import generate_trace

_SPEC = RunSpec(length=300, warmup=600, seed=2)
_PRI = "PRI-refcount+ckptcount"


# ----------------------------------------------------------- cell keys


def test_cell_key_includes_config_digest():
    key = cell_key("gzip", _PRI, 4, _SPEC)
    digest = key.rsplit("|", 1)[1]
    assert len(digest) == 12 and int(digest, 16) >= 0


def test_cell_key_distinguishes_prf_size():
    """The Figure 9 PRF sweep: same scheme/width/spec, different register
    file — the keys must not collide."""
    base = resolve_config(_PRI, 4, _SPEC)
    small = base.with_phys_regs(40)
    key_base = cell_key("gzip", _PRI, 4, _SPEC, config=base)
    key_small = cell_key("gzip", _PRI, 4, _SPEC, config=small)
    assert key_base != key_small
    # ... and only in the digest: the readable prefix is identical.
    assert key_base.rsplit("|", 1)[0] == key_small.rsplit("|", 1)[0]


def test_cell_key_default_config_matches_run_one():
    explicit = cell_key(
        "gzip", _PRI, 4, _SPEC, config=resolve_config(_PRI, 4, _SPEC)
    )
    assert cell_key("gzip", _PRI, 4, _SPEC) == explicit


def test_cell_key_reflects_oracle_flag():
    with_oracle = dataclasses.replace(_SPEC, oracle=True)
    assert cell_key("gzip", "base", 4, _SPEC) != cell_key(
        "gzip", "base", 4, with_oracle
    )


# ------------------------------------------------------ journal version


def test_journal_version_mismatch_raises(tmp_path):
    path = str(tmp_path / "sweep.json")
    with open(path, "w") as fh:
        json.dump({"version": _VERSION - 1, "cells": {"k": {}}}, fh)
    with pytest.raises(ValueError, match="version"):
        SweepJournal(path)


def test_journal_version_archive_and_restart(tmp_path):
    path = str(tmp_path / "sweep.json")
    with open(path, "w") as fh:
        json.dump({"version": _VERSION - 1, "cells": {"k": {}}}, fh)
    journal = SweepJournal(path, archive_incompatible=True)
    assert journal.archived == f"{path}.v{_VERSION - 1}.bak"
    assert os.path.exists(journal.archived)
    assert len(journal) == 0
    # the fresh journal is usable and persists at the new version
    journal.record_error("k", {"kind": "crash"})
    from repro.store import read_checked_lines

    lines = read_checked_lines(path)
    assert lines.clean
    assert lines.records[0]["version"] == _VERSION
    assert len(SweepJournal(path).errors()) == 1


def test_journal_current_version_loads_silently(tmp_path):
    path = str(tmp_path / "sweep.json")
    journal = SweepJournal(path)
    journal.record_error("k", {"kind": "crash"})
    reloaded = SweepJournal(path)
    assert reloaded.archived is None
    assert len(reloaded) == 1


# ------------------------------------------------------- checkpointing


def test_run_one_oracle_spec():
    stats = run_one("gzip", "base", 4, dataclasses.replace(_SPEC, oracle=True))
    assert stats.committed == 300
    assert stats.oracle_commits == 300


def test_checkpointed_run_matches_plain(tmp_path):
    plain = run_one("gzip", _PRI, 4, _SPEC)
    spec = dataclasses.replace(
        _SPEC, checkpoint_every=200, checkpoint_dir=str(tmp_path)
    )
    checkpointed = run_one("gzip", _PRI, 4, spec)
    assert checkpointed.to_dict() == plain.to_dict()
    # a completed cell leaves no checkpoint behind
    assert not os.path.exists(checkpoint_path("gzip", _PRI, 4, spec))


def test_crashed_cell_resumes_from_checkpoint(tmp_path):
    """A cell killed mid-run leaves its last checkpoint on disk; the next
    attempt resumes from it and produces bit-identical statistics."""
    spec = dataclasses.replace(
        _SPEC, checkpoint_every=150, checkpoint_dir=str(tmp_path)
    )
    config = resolve_config(_PRI, 4, spec)
    trace = generate_trace("gzip", spec.length, seed=spec.seed,
                           warmup=spec.warmup)
    path = checkpoint_path("gzip", _PRI, 4, spec)

    # "crash" the first attempt with a tight cycle watchdog
    truncated = _run_checkpointed(
        config, trace, path, dataclasses.replace(spec, max_cycles=200)
    )
    assert truncated.committed < 300
    assert os.path.exists(path), "checkpoint must survive a failed attempt"

    resumed = _run_checkpointed(config, trace, path, spec)
    plain = run_one("gzip", _PRI, 4, _SPEC)
    assert resumed.to_dict() == plain.to_dict()
    assert not os.path.exists(path)


def test_stale_checkpoint_is_ignored(tmp_path):
    """A checkpoint from a different config/trace must not poison the
    run: it is discarded and the cell starts over."""
    spec = dataclasses.replace(
        _SPEC, checkpoint_every=150, checkpoint_dir=str(tmp_path)
    )
    path = checkpoint_path("gzip", _PRI, 4, spec)
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write('{"version": 999}')
    stats = run_one("gzip", _PRI, 4, spec)
    assert stats.to_dict() == run_one("gzip", _PRI, 4, _SPEC).to_dict()


def test_checkpoint_path_embeds_config_digest(tmp_path):
    spec = dataclasses.replace(_SPEC, checkpoint_dir=str(tmp_path))
    with_oracle = dataclasses.replace(spec, oracle=True)
    assert checkpoint_path("gzip", _PRI, 4, spec) != checkpoint_path(
        "gzip", _PRI, 4, with_oracle
    )
