"""Report formatting tests."""

import pytest

from repro.experiments.report import format_table, geomean, mean


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            "title", ("name", "x"), [("alpha", 1.5), ("b", 2.0)]
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "alpha" in text and "1.500" in text
        header_idx = next(i for i, l in enumerate(lines) if "name" in l)
        rows = lines[header_idx + 2:-1]
        assert len(rows) == 2
        assert all(len(row) == len(rows[0]) for row in rows)

    def test_custom_float_format(self):
        text = format_table("t", ("a",), [(1.23456,)], floatfmt="{:.1f}")
        assert "1.2" in text and "1.23" not in text

    def test_non_float_cells_pass_through(self):
        text = format_table("t", ("a", "b"), [("x", 7)])
        assert "x" in text and "7" in text


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])
