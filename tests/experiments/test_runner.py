"""Experiment runner tests."""

import pytest

from repro.experiments.runner import (
    FIGURE10_SCHEMES,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SCHEMES,
    RunSpec,
    TraceCache,
    run_matrix,
    run_one,
    speedups_over_base,
    width_config,
)

_SPEC = RunSpec(length=400, warmup=800, seed=2)


class TestRegistry:
    def test_scheme_names_match_figure10_legend(self):
        assert set(FIGURE10_SCHEMES) | {"base"} == set(SCHEMES)

    def test_benchmark_lists(self):
        assert len(INT_BENCHMARKS) == 13
        assert len(FP_BENCHMARKS) == 14

    def test_width_config(self):
        assert width_config(4).width == 4
        assert width_config(8).scheduler_entries == 512
        with pytest.raises(ValueError):
            width_config(6)

    def test_scheme_transformers(self):
        base = width_config(4)
        assert SCHEMES["PRI-refcount+ckptcount"](base).pri.enabled
        assert SCHEMES["ER"](base).early_release
        assert not SCHEMES["ER"](base).pri.enabled
        both = SCHEMES["PRI+ER"](base)
        assert both.pri.enabled and both.early_release
        assert SCHEMES["inf"](base).int_phys_regs >= 1024


class TestRunning:
    def test_run_one(self):
        stats = run_one("gzip", "base", 4, _SPEC, TraceCache())
        assert stats.committed == 400
        assert stats.ipc > 0

    def test_trace_cache_reuses(self):
        cache = TraceCache()
        a = cache.get("gzip", _SPEC)
        b = cache.get("gzip", _SPEC)
        assert a is b
        c = cache.get("gzip", RunSpec(length=401, warmup=800, seed=2))
        assert c is not a

    def test_matrix_and_speedups(self):
        cache = TraceCache()
        matrix = run_matrix(["gzip"], ["base", "inf"], 4, _SPEC, cache)
        assert set(matrix) == {"gzip"}
        speedups = speedups_over_base(matrix)
        assert "inf" in speedups["gzip"]
        assert speedups["gzip"]["inf"] > 0.9
