"""ASCII chart rendering tests."""

from repro.experiments.report import bar_chart, stacked_bar_chart


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        text = bar_chart("t", [("a", 1.1), ("b", 1.4)], baseline=1.0)
        lines = text.splitlines()
        a_len = lines[1].count("#")
        b_len = lines[2].count("#")
        assert b_len > a_len > 0

    def test_baseline_subtracted(self):
        text = bar_chart("t", [("x", 1.0)], baseline=1.0)
        assert text.splitlines()[1].count("#") == 0

    def test_empty(self):
        assert bar_chart("title", []) == "title"

    def test_values_printed(self):
        assert "1.250" in bar_chart("t", [("x", 1.25)])


class TestStackedBarChart:
    def test_segments_use_distinct_fills(self):
        text = stacked_bar_chart(
            "t", [("x", (10.0, 20.0, 30.0))], ("p1", "p2", "p3")
        )
        row = text.splitlines()[-1]
        assert "#" in row and "=" in row and "+" in row
        assert row.index("#") < row.index("=") < row.index("+")

    def test_legend_present(self):
        text = stacked_bar_chart("t", [("x", (1.0,))], ("phase",))
        assert "#=phase" in text

    def test_totals_shown(self):
        text = stacked_bar_chart("t", [("x", (10.0, 5.0))], ("a", "b"))
        assert "15.0" in text

    def test_relative_lengths(self):
        text = stacked_bar_chart(
            "t", [("big", (40.0,)), ("small", (10.0,))], ("a",)
        )
        lines = text.splitlines()
        assert lines[2].count("#") > lines[3].count("#")
