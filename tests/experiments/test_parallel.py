"""Parallel experiment execution must be bit-identical to serial."""


from repro.experiments.runner import RunSpec, TraceCache, run_matrix

_SPEC = RunSpec(length=300, warmup=600, seed=7)


def test_parallel_matches_serial():
    benchmarks = ["gzip", "mcf"]
    schemes = ["base", "PRI-refcount+ckptcount"]
    serial = run_matrix(benchmarks, schemes, 4, _SPEC, TraceCache())
    parallel = run_matrix(benchmarks, schemes, 4, _SPEC, jobs=2)
    for b in benchmarks:
        for s in schemes:
            assert serial[b][s].cycles == parallel[b][s].cycles
            assert serial[b][s].committed == parallel[b][s].committed
            assert serial[b][s].inlined == parallel[b][s].inlined


def test_single_benchmark_stays_serial():
    result = run_matrix(["gzip"], ["base"], 4, _SPEC, jobs=4)
    assert result["gzip"]["base"].committed == 300


def test_figure_driver_accepts_jobs():
    from repro.experiments.figures import figure10

    result = figure10(_SPEC, widths=(4,), benchmarks=("gzip", "mcf"), jobs=2)
    assert set(result.data[4]["speedups"]) == {"gzip", "mcf"}
