"""CLI entry point tests (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import main


def test_requires_a_target(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_table_1(capsys):
    assert main(["--table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "4-wide" in out and "8-wide" in out


def test_single_figure_tiny(capsys):
    code = main(["--figure", "1", "--length", "120", "--warmup", "300",
                 "--width", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "last-read->release" in out
    assert "width 8" not in out  # restricted to one width


def test_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["--figure", "3"])  # Figure 3 is a structural diagram


def test_figure_with_oracle_and_checkpoints(tmp_path, capsys):
    import os

    code = main(["--figure", "1", "--length", "120", "--warmup", "300",
                 "--width", "4", "--oracle",
                 "--checkpoint-every", "500",
                 "--checkpoint-dir", str(tmp_path)])
    assert code == 0
    assert "Figure 1" in capsys.readouterr().out
    assert not os.listdir(str(tmp_path)), "completed cells left checkpoints"


def test_incompatible_journal_is_reported(tmp_path, capsys):
    import json

    path = str(tmp_path / "sweep.json")
    with open(path, "w") as fh:
        json.dump({"version": 1, "cells": {}}, fh)
    code = main(["--figure", "1", "--length", "120", "--warmup", "300",
                 "--width", "4", "--journal", path])
    assert code == 1
    err = capsys.readouterr().err
    assert "version" in err
