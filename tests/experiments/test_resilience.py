"""Fault-tolerant sweep execution: crash isolation, timeouts, retries,
and the on-disk sweep journal."""

import os
import time

import pytest

from repro.core.stats import SimStats
from repro.experiments import (
    CellError,
    MatrixError,
    RunSpec,
    SweepJournal,
    cell_key,
    matrix_errors,
    run_matrix,
    run_one,
)

_SPEC = RunSpec(length=300, warmup=600, seed=2)
_PRI = "PRI-refcount+ckptcount"


def _crash_pri(benchmark, scheme, width, spec, traces=None):
    if scheme == _PRI:
        os._exit(9)  # simulates a segfault/OOM-kill: no exception, no result
    return run_one(benchmark, scheme, width, spec, traces)


def _hang_pri(benchmark, scheme, width, spec, traces=None):
    if scheme == _PRI:
        time.sleep(60)
    return run_one(benchmark, scheme, width, spec, traces)


def _raise_pri(benchmark, scheme, width, spec, traces=None):
    if scheme == _PRI:
        raise ValueError("deterministic failure")
    return run_one(benchmark, scheme, width, spec, traces)


def test_crashing_cell_yields_partial_results():
    results = run_matrix(
        ["gzip"], ["base", _PRI], 4, _SPEC, jobs=2,
        on_error="record", cell_fn=_crash_pri,
    )
    ok = results["gzip"]["base"]
    assert isinstance(ok, SimStats) and ok.committed == 300
    err = results["gzip"][_PRI]
    assert isinstance(err, CellError)
    assert err.kind == "crash"
    assert "exit code 9" in err.message
    assert matrix_errors(results) == [err]


def test_crashing_cell_raises_matrix_error_with_partials():
    with pytest.raises(MatrixError) as excinfo:
        run_matrix(["gzip"], ["base", _PRI], 4, _SPEC, jobs=2,
                   cell_fn=_crash_pri)
    err = excinfo.value
    assert len(err.errors) == 1 and err.errors[0].kind == "crash"
    assert err.results["gzip"]["base"].committed == 300


def test_hanging_cell_times_out():
    start = time.monotonic()
    results = run_matrix(
        ["gzip"], ["base", _PRI], 4, _SPEC, jobs=2,
        on_error="record", cell_timeout=2.0, cell_fn=_hang_pri,
    )
    assert time.monotonic() - start < 30
    err = results["gzip"][_PRI]
    assert isinstance(err, CellError) and err.kind == "timeout"
    assert results["gzip"]["base"].committed == 300


def test_crash_is_retried(tmp_path):
    marker = tmp_path / "attempts"

    def counting_crash(benchmark, scheme, width, spec, traces=None):
        with open(marker, "a") as handle:
            handle.write("x")
        os._exit(9)

    results = run_matrix(
        ["gzip"], ["base"], 4, _SPEC, jobs=2, on_error="record",
        retries=2, retry_backoff=0.01, cell_fn=counting_crash,
    )
    err = results["gzip"]["base"]
    assert isinstance(err, CellError) and err.attempts == 3
    assert marker.read_text() == "xxx"


def test_deterministic_error_is_not_retried():
    results = run_matrix(
        ["gzip"], ["base", _PRI], 4, _SPEC, jobs=2, on_error="record",
        retries=3, retry_backoff=0.01, cell_fn=_raise_pri,
    )
    err = results["gzip"][_PRI]
    assert isinstance(err, CellError)
    assert err.kind == "error"
    assert err.error_type == "ValueError"
    assert err.attempts == 1


def test_serial_path_records_errors_too():
    results = run_matrix(
        ["gzip"], ["base", _PRI], 4, _SPEC, jobs=1,
        on_error="record", cell_fn=_raise_pri,
    )
    err = results["gzip"][_PRI]
    assert isinstance(err, CellError) and err.kind == "error"
    assert results["gzip"]["base"].committed == 300


def test_max_cycles_watchdog_fails_cell():
    tight = RunSpec(length=300, warmup=600, seed=2, max_cycles=20)
    with pytest.raises(Exception, match="watchdog"):
        run_one("gzip", "base", 4, tight)


# ------------------------------------------------------------- journal


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "sweep.json"
    stats = run_one("gzip", "base", 4, _SPEC)
    journal = SweepJournal(str(path))
    key = cell_key("gzip", "base", 4, _SPEC)
    journal.record_ok(key, stats)

    reloaded = SweepJournal(str(path))
    restored = reloaded.get(key)
    assert restored is not None
    assert restored.ipc == stats.ipc
    assert restored.committed == stats.committed
    assert restored.lifetimes["int"].avg_total == stats.lifetimes["int"].avg_total


def test_journal_resume_skips_completed_cells(tmp_path):
    path = str(tmp_path / "sweep.json")
    first = run_matrix(["gzip"], ["base", "ER"], 4, _SPEC, journal=path)

    marker = tmp_path / "calls"

    def counting(benchmark, scheme, width, spec, traces=None):
        with open(marker, "a") as handle:
            handle.write("x")
        return run_one(benchmark, scheme, width, spec, traces)

    second = run_matrix(["gzip"], ["base", "ER"], 4, _SPEC, journal=path,
                        cell_fn=counting)
    assert not marker.exists(), "journaled cells were re-simulated"
    assert second["gzip"]["base"].ipc == first["gzip"]["base"].ipc
    assert second["gzip"]["ER"].ipc == first["gzip"]["ER"].ipc


def test_journal_records_and_heals_errors(tmp_path):
    path = str(tmp_path / "sweep.json")
    results = run_matrix(
        ["gzip"], ["base", _PRI], 4, _SPEC, jobs=2,
        on_error="record", journal=path, cell_fn=_crash_pri,
    )
    assert isinstance(results["gzip"][_PRI], CellError)
    journal = SweepJournal(path)
    assert journal.completed == 1
    assert len(journal.errors()) == 1

    # a re-run retries only the failed cell, and the journal heals
    healed = run_matrix(["gzip"], ["base", _PRI], 4, _SPEC, jobs=2,
                        journal=path)
    assert healed["gzip"][_PRI].committed == 300
    reloaded = SweepJournal(path)
    assert reloaded.completed == 2
    assert not reloaded.errors()


def test_journal_key_distinguishes_spec(tmp_path):
    other = RunSpec(length=300, warmup=600, seed=3)
    assert cell_key("gzip", "base", 4, _SPEC) != cell_key("gzip", "base", 4, other)
    assert cell_key("gzip", "base", 4, _SPEC) != cell_key("gzip", "base", 8, _SPEC)

    path = str(tmp_path / "sweep.json")
    run_matrix(["gzip"], ["base"], 4, _SPEC, journal=path)
    journal = SweepJournal(path)
    assert journal.get(cell_key("gzip", "base", 4, other)) is None


def test_parallel_with_resilience_matches_serial():
    serial = run_matrix(["gzip", "mcf"], ["base", _PRI], 4, _SPEC, jobs=1)
    parallel = run_matrix(["gzip", "mcf"], ["base", _PRI], 4, _SPEC, jobs=4,
                          cell_timeout=120.0, retries=1)
    for benchmark in ("gzip", "mcf"):
        for scheme in ("base", _PRI):
            assert serial[benchmark][scheme].ipc == parallel[benchmark][scheme].ipc
