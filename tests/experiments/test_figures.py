"""Figure/table driver smoke tests at miniature scale: each driver must
produce the paper's rows and series and render cleanly."""

import pytest

from repro.experiments import (
    RunSpec,
    TraceCache,
    figure1,
    figure2,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table2,
)

_SPEC = RunSpec(length=350, warmup=700, seed=2)
_BENCH = ("gzip", "mcf")
_FP_BENCH = ("swim", "ammp")


@pytest.fixture(scope="module")
def cache():
    return TraceCache()


class TestTables:
    def test_table1_lists_both_machines(self):
        text = table1().render()
        assert "4-wide" in text and "8-wide" in text
        assert "512" in text  # ROB

    def test_table2_structure(self, cache):
        result = table2(_SPEC, widths=(4,), traces=cache)
        text = result.render()
        assert "gzip" in text and "ammp" in text
        assert "paper(4w)" in text


class TestFigureDrivers:
    def test_figure1(self, cache):
        result = figure1(_SPEC, widths=(4,), benchmarks=_BENCH, traces=cache)
        assert len(result.data[4]) == 2
        text = result.render()
        assert "last-read->release" in text
        # The stacked ASCII chart is part of the rendering.
        assert "#=alloc->write" in text

    def test_figure2(self):
        result = figure2(length=800, seed=2, int_benchmarks=("gzip",),
                         fp_benchmarks=("swim",))
        assert "gzip" in result.render()
        cdf = result.data["int"]["gzip"]
        assert cdf[64] == pytest.approx(1.0)

    def test_figure8_has_three_schemes(self, cache):
        result = figure8(_SPEC, widths=(4,), benchmarks=("gzip",), traces=cache)
        assert set(result.data[4]["gzip"]) == {"base", "PRI", "PRI+ER"}

    def test_figure9_normalized_to_smallest(self, cache):
        result = figure9(_SPEC, widths=(4,), benchmarks=("gzip",),
                         sizes=(40, 64), traces=cache)
        data = result.data[4]["gzip"]
        assert data[40] == pytest.approx(1.0)
        assert data[64] >= 1.0

    def test_figure10_series(self, cache):
        result = figure10(_SPEC, widths=(4,), benchmarks=("gzip",), traces=cache)
        speedups = result.data[4]["speedups"]["gzip"]
        assert set(speedups) == {
            "ER", "PRI-refcount+ckptcount", "PRI-refcount+lazy",
            "PRI-ideal+ckptcount", "PRI-ideal+lazy", "PRI+ER", "inf",
        }
        assert "mean speedup by scheme" in result.render()

    def test_figure11_occupancies(self, cache):
        result = figure11(_SPEC, widths=(4,), benchmarks=("gzip",), traces=cache)
        occ = result.data[4]["gzip"]
        assert 0 < occ["PRI"] <= 64
        assert occ["base"] >= occ["PRI+ER"] * 0.9

    def test_figure12_runs_fp(self, cache):
        result = figure12(_SPEC, widths=(4,), benchmarks=_FP_BENCH, traces=cache)
        assert "ammp" in result.render()
