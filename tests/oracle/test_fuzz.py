"""Fuzz harness: deterministic sampling, outcome classification, and
reproducer specs that replay their recorded failure exactly."""

import dataclasses
import json

import pytest

from repro.oracle.fuzz import (
    REPRODUCER_VERSION,
    FuzzSpec,
    ReplayMismatch,
    fuzz,
    load_reproducer,
    replay_spec,
    run_spec,
    sample_spec,
    shrink_spec,
    write_reproducer,
)

# A small, fast, healthy case used across the tests below.
_CLEAN = FuzzSpec(
    seed=0, benchmark="gzip", length=600, warmup=1200, trace_seed=3,
    oracle_interval=64, audit_interval=256,
)

# Seeded corruption that the auditor catches (free-list audit).
_CAUGHT = dataclasses.replace(_CLEAN, fault="double-free", fault_cycle=60)

# Seeded corruption that neither checker can see: with the auditor off,
# a register silently vanishing from the free list is invisible to the
# golden model (no architectural value changes) — a guaranteed escape,
# which run_spec must classify as a finding.
_ESCAPE = dataclasses.replace(
    _CLEAN, fault="free-list-leak", fault_cycle=60, audit=False
)


def test_sample_spec_deterministic():
    assert sample_spec(42) == sample_spec(42)
    specs = [sample_spec(s) for s in range(20)]
    assert len({spec.benchmark for spec in specs}) > 1
    assert all(spec.seed == i for i, spec in enumerate(specs))


def test_sample_spec_fault_rate():
    none = [sample_spec(s, fault_rate=0.0) for s in range(10)]
    assert all(spec.fault is None for spec in none)
    some = [sample_spec(s, fault_rate=1.0) for s in range(10)]
    assert all(spec.fault is not None for spec in some)


def test_sample_spec_repairs_vp_plus_er():
    """Incompatible knobs are repaired, never emitted."""
    for seed in range(60):
        spec = sample_spec(seed)
        assert not (spec.virtual_physical and spec.early_release)


def test_spec_dict_roundtrip():
    spec = sample_spec(7, fault_rate=1.0)
    assert FuzzSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


def test_run_spec_clean():
    assert run_spec(_CLEAN)["outcome"] == "clean"


def test_run_spec_catches_seeded_fault():
    result = run_spec(_CAUGHT)
    assert result["outcome"] == "caught"
    assert result["error_type"] == "AuditError"
    assert result["fault_applied"] is not None


def test_run_spec_reports_escape_as_finding():
    result = run_spec(_ESCAPE)
    assert result["outcome"] == "finding"
    assert result["kind"] == "fault-escaped"
    assert "free-list-leak" in result["message"]


def test_run_spec_not_applicable():
    # A refcount fault on a machine that keeps no refcounts (base
    # scheme: no PRI, no ER) never finds state to corrupt.
    spec = dataclasses.replace(
        _CLEAN, pri=False, fault="refcount-drop", fault_cycle=60
    )
    assert run_spec(spec)["outcome"] == "not-applicable"


def test_shrink_preserves_failure():
    result = run_spec(_ESCAPE)
    shrunk = shrink_spec(_ESCAPE, result)
    assert shrunk.warmup == 0
    assert shrunk.length <= _ESCAPE.length
    again = run_spec(shrunk)
    assert again["outcome"] == "finding"
    assert again["kind"] == "fault-escaped"


def test_reproducer_roundtrip_and_replay(tmp_path):
    """Acceptance: a written reproducer spec deterministically reproduces
    its recorded failure."""
    result = run_spec(_ESCAPE)
    path = write_reproducer(_ESCAPE, result, str(tmp_path / "repro.json"))
    payload = load_reproducer(path)
    assert payload["version"] == REPRODUCER_VERSION
    assert FuzzSpec.from_dict(payload["spec"]) == _ESCAPE
    fresh = replay_spec(path)
    assert fresh["outcome"] == result["outcome"]
    assert fresh["kind"] == result["kind"]


def test_replay_mismatch_detected(tmp_path):
    result = run_spec(_CLEAN)
    path = str(tmp_path / "repro.json")
    write_reproducer(
        _CLEAN, {**result, "outcome": "finding", "error_type": "X"}, path
    )
    with pytest.raises(ReplayMismatch, match="replay produced"):
        replay_spec(path)


def test_reproducer_version_enforced(tmp_path):
    from repro.store import read_json_artifact, write_json_artifact
    from repro.oracle.fuzz import REPRODUCER_KIND

    path = str(tmp_path / "repro.json")
    write_reproducer(_CLEAN, run_spec(_CLEAN), path)
    payload, _ = read_json_artifact(path, REPRODUCER_KIND)
    payload["version"] = REPRODUCER_VERSION + 1
    write_json_artifact(path, REPRODUCER_KIND, REPRODUCER_VERSION + 1, payload)
    with pytest.raises(ValueError, match="version"):
        load_reproducer(path)


def test_reproducer_legacy_plain_json_loads(tmp_path):
    """Reproducers written before the checksummed envelope (plain JSON)
    still load transparently."""
    path = str(tmp_path / "legacy.json")
    payload = {
        "version": REPRODUCER_VERSION,
        "spec": _CLEAN.to_dict(),
        "result": {"outcome": "clean"},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    loaded = load_reproducer(path)
    assert FuzzSpec.from_dict(loaded["spec"]) == _CLEAN


def test_fuzz_campaign_writes_reproducers(tmp_path, monkeypatch):
    """A tiny campaign: one clean case and one escape; the escape is
    shrunk and written out as a reproducer spec."""
    import importlib

    # ``import repro.oracle.fuzz`` would resolve to the re-exported
    # fuzz() *function* on the package; fetch the module itself.
    fuzz_module = importlib.import_module("repro.oracle.fuzz")
    specs = {0: _CLEAN, 1: _ESCAPE}
    monkeypatch.setattr(
        fuzz_module, "sample_spec",
        lambda seed, benchmarks=None, fault_rate=0.0: specs[seed],
    )
    report = fuzz([0, 1], out_dir=str(tmp_path))
    assert report.cases == 2
    assert report.clean == 1
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.reproducer_path is not None
    assert replay_spec(finding.reproducer_path)["outcome"] == "finding"
    assert "fault-escaped" in str(finding)
