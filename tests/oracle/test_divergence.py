"""Injected corruptions under the oracle: every PR-1 fault class must be
caught, and value-corrupting faults must surface as structured
OracleDivergence even with the invariant auditor disabled."""

import pytest

from repro.audit import FAULTS, AuditError, run_with_fault
from repro.core.machine import Machine, SimulationError
from repro.experiments.runner import SCHEMES
from repro.oracle import OracleDivergence


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_fault_caught_under_oracle_and_audit(cfg4, gzip_trace, name):
    """Acceptance: each injected fault class, run with the oracle
    attached, is caught by the oracle or the auditor (never escapes)."""
    fault = FAULTS[name]
    needs_refs = name in (
        "refcount-leak", "refcount-drop", "war-release", "stale-checkpoint",
    )
    scheme = "PRI+ER" if needs_refs else "base"
    config = SCHEMES[scheme](cfg4).with_oracle(interval=64)
    err = run_with_fault(config, gzip_trace, fault)
    # run_with_fault returns the AuditError; an OracleDivergence (also a
    # SimulationError) would propagate out of it — both count as caught,
    # and neither may escape (FaultNotCaught would fail the test).
    assert isinstance(err, (AuditError, OracleDivergence))


def _run_oracle_only(config, trace, fault, at_cycle=50, max_cycles=50_000):
    """Fault-injection harness with the auditor *off*: only the golden
    model stands between the corruption and a silently wrong run."""
    machine = Machine(config.with_oracle(interval=32))
    applied = []

    def hook(m):
        if not applied and m.now >= at_cycle:
            detail = fault.apply(m)
            if detail is not None:
                applied.append((m.now, detail))

    machine.add_cycle_hook(hook)
    with pytest.raises(OracleDivergence) as excinfo:
        machine.run(trace, max_cycles=max_cycles)
    assert applied, "fault never became applicable"
    return excinfo.value


def test_war_release_diverges_oracle_only(cfg4, gzip_trace):
    """The paper's Figure 6 WAR violation: reclaiming a register under
    outstanding consumers is a *value* bug, and the oracle pins it to
    the offending trace index."""
    # at_cycle picked so the reclaimed register is re-allocated before
    # the stranded consumer reads it (otherwise the corruption stays
    # architecturally invisible and the run is legitimately clean).
    err = _run_oracle_only(
        SCHEMES["PRI+ER"](cfg4), gzip_trace, FAULTS["war-release"],
        at_cycle=100,
    )
    diag = err.diagnostic
    assert diag["kind"]
    assert diag["trace_index"] is not None and diag["trace_index"] >= 0
    assert diag["scheme"]
    assert isinstance(diag["inflight"], tuple) and len(diag["inflight"]) == 3


def test_map_corrupt_diverges_oracle_only(cfg4, gzip_trace):
    err = _run_oracle_only(
        SCHEMES["base"](cfg4), gzip_trace, FAULTS["map-corrupt"],
        at_cycle=400,
    )
    diag = err.diagnostic
    assert diag["kind"]
    assert diag["trace_index"] is not None and diag["trace_index"] >= 0
    assert diag["reg_class"] == "int"
    assert diag["lreg"] is not None


def test_oracle_divergence_is_simulation_error(cfg4, gzip_trace):
    """Callers that only know SimulationError still see the failure."""
    err = _run_oracle_only(
        SCHEMES["base"](cfg4), gzip_trace, FAULTS["map-corrupt"],
        at_cycle=400,
    )
    assert isinstance(err, SimulationError)
