"""Golden-model oracle: clean machines pass every differential check,
and the checker state itself round-trips through snapshots."""

import pytest

from repro.core.machine import Machine, simulate
from repro.experiments.runner import SCHEMES
from repro.oracle import CommitOracle, GoldenModel, OracleDivergence


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_clean_run_under_oracle(cfg4, gzip_trace, scheme):
    config = SCHEMES[scheme](cfg4).with_oracle(interval=64)
    stats = simulate(config, gzip_trace)
    assert stats.committed == len(gzip_trace)
    assert stats.oracle_commits == len(gzip_trace)
    assert stats.oracle_arch_checks > 0
    # Every destination is either checked in place or (reclaimed early)
    # deferred to the architectural sweep — never silently skipped.
    writers = sum(1 for op in gzip_trace if op.dest is not None)
    assert stats.oracle_dest_checks + stats.oracle_unobserved == writers


def test_oracle_with_auditor(cfg4, gzip_trace):
    config = SCHEMES["PRI+ER"](cfg4).with_oracle(interval=64).with_audit(
        interval=64
    )
    stats = simulate(config, gzip_trace)
    assert stats.oracle_commits == len(gzip_trace)
    assert stats.audits > 0


def test_oracle_final_sweep_runs(cfg4, gzip_trace):
    """interval=0 disables the periodic sweep but the end-of-run
    architectural comparison still happens."""
    config = SCHEMES["base"](cfg4).with_oracle(interval=0)
    stats = simulate(config, gzip_trace)
    assert stats.oracle_arch_checks == 1


def test_oracle_off_by_default(cfg4, gzip_trace):
    stats = simulate(SCHEMES["base"](cfg4), gzip_trace)
    assert stats.oracle_commits == 0
    assert stats.oracle_arch_checks == 0


def test_golden_model_tracks_trace(gzip_trace):
    golden = GoldenModel(gzip_trace)
    for op in gzip_trace:
        golden.apply(op)
    assert golden.index == len(gzip_trace)
    assert golden.stores == sum(1 for op in gzip_trace if op.is_store)


def test_golden_model_snapshot_roundtrip(gzip_trace):
    golden = GoldenModel(gzip_trace)
    for op in list(gzip_trace)[:500]:
        golden.apply(op)
    image = golden.snapshot()
    other = GoldenModel(gzip_trace)
    other.restore(image)
    assert other.snapshot() == image
    assert other.index == 500


def test_divergence_diagnostic_structure(cfg4, gzip_trace):
    machine = Machine(cfg4.with_oracle())
    machine.reset(gzip_trace)
    oracle = CommitOracle(cfg4.oracle, gzip_trace)
    err = oracle.divergence(
        machine,
        "dest-value",
        "synthetic",
        trace_index=12,
        reg_class="int",
        lreg=3,
        preg=17,
        expected=0x10,
        actual=0x20,
    )
    assert isinstance(err, OracleDivergence)
    diag = err.diagnostic
    assert diag["kind"] == "dest-value"
    assert diag["trace_index"] == 12
    assert diag["expected"] == 0x10 and diag["actual"] == 0x20
    assert "oracle[dest-value]" in str(err)
    assert "trace[12]" in str(err)
