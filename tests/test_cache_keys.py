"""Golden-digest regression suite: the cache key must never drift.

The serving tier addresses its result cache by config digest + trace
identity.  A silently shifted key — a Python upgrade changing dict
iteration, a json serialization nuance, a refactor reordering fields —
would not crash anything: every lookup would simply miss, re-simulate,
and re-store under the new address.  A 0% hit-rate outage with green
tests.  These goldens turn that silent drift into a red test; the CI
matrix runs them on Python 3.9, 3.11, and 3.12, so cross-version
byte-stability is asserted by the matrix, not by hope.

If one of these fails because the *config schema intentionally changed*
(a genuinely new field that affects simulation), bump the goldens in
the same commit and say so: every deployed cache is invalidated.
"""

import json

import pytest

from repro.config import config_digest, config_to_dict, eight_wide, four_wide
from repro.experiments.journal import cell_key
from repro.experiments.runner import RunSpec
from repro.farm.lease import cid_of
from repro.serve.cache import cache_address
from repro.serve.jobs import JobSpec

# ------------------------------------------------------------- goldens
# Computed once at introduction; any unintended change is a regression.

GOLDEN_FOUR_WIDE = "e9bd72206059"
GOLDEN_EIGHT_WIDE = "e1dbc2020055"
GOLDEN_FOUR_WIDE_16 = "e9bd72206059d739"

GOLDEN_BASE_KEY = "gzip|base|w4|n6000|u20000|s1|c0|a0|e9bd72206059"
GOLDEN_BASE_ID = "0023b9987182816e"
GOLDEN_BASE_ADDR = "0023b9987182816e5525cfe47efc2acd"

GOLDEN_FULL_KEY = ("mcf|PRI-refcount+lazy|w8|n3000|u5000|s3|c100000|a0|"
                   "a97f0b28f335")
GOLDEN_FULL_ID = "b2ded20477cd737f"


def test_config_digest_goldens():
    assert config_digest(four_wide()) == GOLDEN_FOUR_WIDE
    assert config_digest(eight_wide()) == GOLDEN_EIGHT_WIDE
    assert config_digest(four_wide(), length=16) == GOLDEN_FOUR_WIDE_16


def test_job_key_golden_defaults():
    spec = JobSpec(benchmark="gzip", scheme="base")
    assert spec.key() == GOLDEN_BASE_KEY
    assert spec.job_id() == GOLDEN_BASE_ID
    assert cache_address(spec.key()) == GOLDEN_BASE_ADDR


def test_job_key_golden_every_axis_pinned():
    spec = JobSpec(benchmark="mcf", scheme="PRI-refcount+lazy", width=8,
                   length=3000, warmup=5000, seed=3, max_cycles=100000,
                   regs=72)
    assert spec.key() == GOLDEN_FULL_KEY
    assert spec.job_id() == GOLDEN_FULL_ID


def test_cell_key_agrees_with_job_key():
    """The serving tier and the sweep journal must never disagree on
    simulation identity — one derivation, two consumers."""
    spec = JobSpec(benchmark="gzip", scheme="base")
    assert cell_key("gzip", "base", 4, RunSpec()) == spec.key()


def test_digest_independent_of_dict_ordering():
    """The digest is over sort_keys JSON: feeding the same fields in a
    scrambled insertion order must not move it."""
    fields = config_to_dict(four_wide())
    scrambled = dict(sorted(fields.items(), reverse=True))
    assert scrambled != {} and list(scrambled) != list(fields)
    assert (json.dumps(scrambled, sort_keys=True)
            == json.dumps(fields, sort_keys=True))


def test_digest_sensitive_to_every_field_value():
    """Any changed config value must move the digest (no field is
    silently outside the key)."""
    base = config_to_dict(four_wide())
    digest = config_digest(four_wide())
    for name, value in base.items():
        if isinstance(value, bool):
            mutated = four_wide().__class__(**{**base, name: not value})
        elif isinstance(value, int):
            mutated = four_wide().__class__(**{**base, name: value + 1})
        elif isinstance(value, str):
            mutated = four_wide().__class__(**{**base, name: value + "x"})
        else:
            continue
        assert config_digest(mutated) != digest, (
            f"config field {name!r} does not move the digest")


def test_ids_are_prefix_stable_hashes():
    """id and cache address are both SHA-256 prefixes of the key —
    deterministic, process-independent, PYTHONHASHSEED-immune."""
    key = GOLDEN_BASE_KEY
    assert cid_of(key) == GOLDEN_BASE_ID
    assert cache_address(key).startswith(cid_of(key))


@pytest.mark.parametrize("a,b", [
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="mcf")),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", scheme="ER")),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", width=8)),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", length=5999)),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", warmup=19999)),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", seed=2)),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", max_cycles=1)),
    (JobSpec(benchmark="gzip"), JobSpec(benchmark="gzip", regs=63)),
])
def test_every_job_axis_separates_keys(a, b):
    assert a.key() != b.key()
    assert a.job_id() != b.job_id()
