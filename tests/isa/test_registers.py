"""Architected register name tests."""

import pytest

from repro.isa.opcodes import RegClass
from repro.isa.registers import (
    FP_ZERO_REG,
    INT_ZERO_REG,
    NUM_FP_ARCH_REGS,
    NUM_INT_ARCH_REGS,
    ArchReg,
    num_arch_regs,
)


def test_alpha_register_counts():
    assert NUM_INT_ARCH_REGS == 32
    assert NUM_FP_ARCH_REGS == 32
    assert num_arch_regs(RegClass.INT) == 32
    assert num_arch_regs(RegClass.FP) == 32


def test_zero_registers():
    assert ArchReg(RegClass.INT, INT_ZERO_REG).is_zero
    assert ArchReg(RegClass.FP, FP_ZERO_REG).is_zero
    assert not ArchReg(RegClass.INT, 0).is_zero


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        ArchReg(RegClass.INT, 32)
    with pytest.raises(ValueError):
        ArchReg(RegClass.FP, -1)


def test_repr():
    assert repr(ArchReg(RegClass.INT, 5)) == "r5"
    assert repr(ArchReg(RegClass.FP, 7)) == "f7"
