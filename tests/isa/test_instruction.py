"""MicroOp structural validation tests."""

import pytest

from repro.isa.instruction import MicroOp, SourceOperand
from repro.isa.opcodes import OpClass, RegClass


def _src(idx, value=0):
    return SourceOperand(RegClass.INT, idx, value)


def test_plain_alu_valid():
    op = MicroOp(0, 0x400000, OpClass.INT_ALU, sources=(_src(1),), dest=2, result=5)
    op.validate()
    assert op.writes_register
    assert not op.is_branch and not op.is_load and not op.is_store


def test_memory_op_requires_address():
    op = MicroOp(0, 0x400000, OpClass.LOAD, dest=2, result=5)
    with pytest.raises(ValueError):
        op.validate()


def test_non_memory_op_rejects_address():
    op = MicroOp(0, 0x400000, OpClass.INT_ALU, dest=2, result=5, mem_addr=0x1000)
    with pytest.raises(ValueError):
        op.validate()


def test_store_must_not_write_register():
    op = MicroOp(0, 0x400000, OpClass.STORE, sources=(_src(1),), dest=2,
                 mem_addr=0x1000)
    with pytest.raises(ValueError):
        op.validate()


def test_branch_must_not_write_register():
    op = MicroOp(0, 0x400000, OpClass.BRANCH, dest=3, taken=True, target=4)
    with pytest.raises(ValueError):
        op.validate()


def test_at_most_two_sources():
    op = MicroOp(
        0, 0x400000, OpClass.INT_ALU,
        sources=(_src(1), _src(2), _src(3)), dest=4, result=0,
    )
    with pytest.raises(ValueError):
        op.validate()


def test_flags():
    load = MicroOp(0, 0, OpClass.FP_LOAD, dest=1, dest_class=RegClass.FP,
                   mem_addr=8)
    load.validate()
    assert load.is_load and not load.is_store
    ret = MicroOp(1, 0, OpClass.RETURN, taken=True, target=4, is_indirect=True)
    ret.validate()
    assert ret.is_branch


def test_repr_mentions_dest():
    op = MicroOp(3, 0x400010, OpClass.INT_ALU, dest=2, result=0xBEEF)
    assert "r2" in repr(op)
    assert "INT_ALU" in repr(op)
