"""Op-class taxonomy tests."""

import pytest

from repro.isa.opcodes import (
    LATENCY,
    OpClass,
    RegClass,
    dest_reg_class,
    is_branch,
    is_fp,
    is_load,
    is_mem,
    is_store,
)


def test_every_class_has_a_latency():
    for op in OpClass:
        assert op in LATENCY
        assert LATENCY[op] >= 1


def test_latency_ordering():
    assert LATENCY[OpClass.INT_ALU] < LATENCY[OpClass.INT_MUL] < LATENCY[OpClass.INT_DIV]
    assert LATENCY[OpClass.FP_ADD] <= LATENCY[OpClass.FP_MUL] < LATENCY[OpClass.FP_DIV]


@pytest.mark.parametrize("op", [OpClass.BRANCH, OpClass.CALL, OpClass.RETURN])
def test_branches(op):
    assert is_branch(op)
    assert not is_mem(op)


def test_loads_and_stores():
    assert is_load(OpClass.LOAD) and is_load(OpClass.FP_LOAD)
    assert is_store(OpClass.STORE) and is_store(OpClass.FP_STORE)
    for op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE):
        assert is_mem(op)
    assert not is_load(OpClass.STORE)
    assert not is_store(OpClass.LOAD)


def test_mem_is_exactly_loads_plus_stores():
    for op in OpClass:
        assert is_mem(op) == (is_load(op) or is_store(op))


def test_fp_cluster():
    assert is_fp(OpClass.FP_ADD) and is_fp(OpClass.FP_MUL) and is_fp(OpClass.FP_DIV)
    assert is_fp(OpClass.FP_LOAD) and is_fp(OpClass.FP_STORE)
    assert not is_fp(OpClass.INT_ALU) and not is_fp(OpClass.LOAD)


def test_dest_reg_class():
    assert dest_reg_class(OpClass.FP_ADD) == RegClass.FP
    assert dest_reg_class(OpClass.FP_LOAD) == RegClass.FP
    assert dest_reg_class(OpClass.INT_ALU) == RegClass.INT
    assert dest_reg_class(OpClass.LOAD) == RegClass.INT
