"""Unit and property tests for value-significance helpers — the precise
definition of "narrow" that the whole PRI mechanism hinges on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.values import (
    MAX_UINT64,
    fits_in_bits,
    fp_exponent_bits,
    fp_exponent_field,
    fp_significand_bits,
    fp_significand_field,
    is_all_zeros_or_ones,
    pack_fp,
    sign_extend,
    significant_bits,
    to_signed64,
    to_unsigned64,
    unpack_fp,
)

int64s = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


class TestSignificantBits:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, 1),
            (-1, 1),
            (1, 2),
            (-2, 2),
            (2, 3),
            (3, 3),
            (-3, 3),
            (-4, 3),
            (63, 7),
            (64, 8),
            (-64, 7),
            (-65, 8),
            (127, 8),
            (-128, 8),
            (128, 9),
            ((1 << 62) - 1, 63),
            (1 << 62, 64),
            (-(1 << 63), 64),
            ((1 << 63) - 1, 64),
        ],
    )
    def test_known_widths(self, value, expected):
        assert significant_bits(value) == expected

    @given(int64s)
    def test_minimality(self, value):
        """significant_bits is the *smallest* k that round-trips."""
        k = significant_bits(value)
        assert sign_extend(value, k) == value
        if k > 1:
            assert sign_extend(value, k - 1) != value

    @given(int64s)
    def test_range_is_valid(self, value):
        assert 1 <= significant_bits(value) <= 64

    @given(int64s, st.integers(min_value=1, max_value=64))
    def test_fits_iff_roundtrip(self, value, nbits):
        assert fits_in_bits(value, nbits) == (sign_extend(value, nbits) == value)

    def test_fits_in_zero_bits_is_false(self):
        assert not fits_in_bits(0, 0)
        assert not fits_in_bits(0, -3)

    @given(int64s)
    def test_fits_in_64_always(self, value):
        assert fits_in_bits(value, 64)
        assert fits_in_bits(value, 100)


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_negative(self):
        assert sign_extend(0x80, 8) == -128
        assert sign_extend(0xFF, 8) == -1

    def test_masks_high_bits(self):
        assert sign_extend(0x1FF, 8) == -1

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=0, max_value=MAX_UINT64))
    def test_full_width_is_signed_view(self, pattern):
        assert sign_extend(pattern, 64) == to_signed64(pattern)


class TestConversions:
    @given(int64s)
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed64(to_unsigned64(value)) == value

    @given(st.integers(min_value=0, max_value=MAX_UINT64))
    def test_unsigned_signed_roundtrip(self, pattern):
        assert to_unsigned64(to_signed64(pattern)) == pattern


class TestAllZerosOrOnes:
    def test_zero_and_ones(self):
        assert is_all_zeros_or_ones(0)
        assert is_all_zeros_or_ones(MAX_UINT64)
        assert is_all_zeros_or_ones(-1)  # signed view of all-ones

    @given(st.integers(min_value=1, max_value=MAX_UINT64 - 1))
    def test_other_patterns_are_not(self, pattern):
        assert not is_all_zeros_or_ones(pattern)


class TestFpFields:
    def test_zero_pattern(self):
        assert fp_exponent_bits(0) == 0
        assert fp_significand_bits(0) == 0

    def test_ones_pattern(self):
        assert fp_exponent_bits(MAX_UINT64) == 0
        assert fp_significand_bits(MAX_UINT64) == 0

    def test_packing_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 1e300, -1e-300):
            assert unpack_fp(pack_fp(value)) == value

    def test_field_extraction(self):
        one = pack_fp(1.0)
        assert fp_exponent_field(one) == 1023
        assert fp_significand_field(one) == 0

    def test_one_has_zero_significand_bits(self):
        assert fp_significand_bits(pack_fp(1.0)) == 0

    def test_small_integer_double_has_few_significand_bits(self):
        # 1.5 = significand 0.1b -> exactly 1 high-order significand bit.
        assert fp_significand_bits(pack_fp(1.5)) == 1
        assert fp_significand_bits(pack_fp(1.75)) == 2

    @given(st.integers(min_value=0, max_value=MAX_UINT64))
    def test_ranges(self, pattern):
        assert 0 <= fp_exponent_bits(pattern) <= 11
        assert 0 <= fp_significand_bits(pattern) <= 52

    @given(st.integers(min_value=1, max_value=(1 << 52) - 2))
    def test_significand_bits_counts_trailing_zeros(self, frac):
        bits = fp_significand_bits(frac)
        # frac has exactly 52-bits trailing zeros -> reconstructible.
        assert frac % (1 << (52 - bits)) == 0
        assert (frac >> (52 - bits)) & 1 == 1
