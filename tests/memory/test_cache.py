"""Set-associative cache model tests."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import Cache


def _tiny(assoc=2, line=16, sets=4, latency=2, next_level=None, mem=100):
    config = CacheConfig(size=assoc * line * sets, assoc=assoc, line=line,
                         latency=latency)
    return Cache("T", config, next_level=next_level, memory_latency=mem)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = _tiny()
        r = c.access(0x1000)
        assert not r.hit
        assert r.latency == 2 + 100
        r = c.access(0x1000)
        assert r.hit
        assert r.latency == 2

    def test_same_line_hits(self):
        c = _tiny(line=16)
        c.access(0x1000)
        assert c.access(0x100F).hit
        assert not c.access(0x1010).hit

    def test_miss_rate(self):
        c = _tiny()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.accesses == 3
        assert c.miss_rate == pytest.approx(1 / 3)

    def test_flush(self):
        c = _tiny()
        c.access(0x1000)
        c.flush()
        assert not c.access(0x1000).hit

    def test_lookup_does_not_touch(self):
        c = _tiny()
        assert not c.lookup(0x1000)
        c.access(0x1000)
        hits, misses = c.hits, c.misses
        assert c.lookup(0x1000)
        assert (c.hits, c.misses) == (hits, misses)


class TestReplacement:
    def test_lru_within_set(self):
        c = _tiny(assoc=2, line=16, sets=4)
        stride = 4 * 16  # same set
        a, b, d = 0, stride, 2 * stride
        c.access(a)
        c.access(b)
        c.access(a)      # a MRU, b LRU
        c.access(d)      # evicts b
        assert c.lookup(a)
        assert not c.lookup(b)
        assert c.lookup(d)

    def test_different_sets_do_not_conflict(self):
        c = _tiny(assoc=1, line=16, sets=4)
        c.access(0x00)
        c.access(0x10)  # next set
        assert c.lookup(0x00) and c.lookup(0x10)


class TestHierarchyComposition:
    def test_l2_absorbs_l1_miss(self):
        l2 = _tiny(assoc=4, line=64, sets=16, latency=12)
        l1 = _tiny(assoc=2, line=16, sets=4, latency=2, next_level=l2)
        r = l1.access(0x4000)
        assert r.latency == 2 + 12 + 100  # L1 miss + L2 miss + memory
        l1.flush()
        r = l1.access(0x4000)
        assert r.latency == 2 + 12  # L1 miss, L2 hit


class TestValidation:
    def test_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            Cache("bad", CacheConfig(size=48, assoc=1, line=16, latency=1))

    def test_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            Cache("bad", CacheConfig(size=96, assoc=2, line=24, latency=1))
