"""Memory hierarchy (Table 1) composition tests."""

from repro.config import MemoryConfig
from repro.memory.hierarchy import MemoryHierarchy


def test_paper_latencies():
    mem = MemoryHierarchy()
    # Cold data access: DL1 miss (2) + L2 miss (12) + memory (150).
    assert mem.load_latency(0x1000_0000) == 2 + 12 + 150
    # Now DL1-resident.
    assert mem.load_latency(0x1000_0000) == 2


def test_l1s_share_the_l2():
    mem = MemoryHierarchy()
    mem.load_latency(0x2000_0000)  # brings the line into DL1 + L2
    # An instruction fetch of the same line: IL1 misses, L2 hits.
    assert mem.fetch_latency(0x2000_0000) == 2 + 12


def test_store_allocates():
    mem = MemoryHierarchy()
    mem.store_access(0x3000_0000)
    assert mem.load_latency(0x3000_0000) == 2  # write-allocate


def test_fetch_hit_latency():
    mem = MemoryHierarchy()
    mem.fetch_latency(0x0040_0000)
    assert mem.fetch_latency(0x0040_0000) == 2
    # Same 32B line.
    assert mem.fetch_latency(0x0040_001C) == 2


def test_dl1_hit_latency_property():
    assert MemoryHierarchy().dl1_hit_latency == 2


def test_flush_resets_everything():
    mem = MemoryHierarchy()
    mem.load_latency(0x1000)
    mem.fetch_latency(0x1000)
    mem.flush()
    assert mem.load_latency(0x1000) == 164


def test_paper_geometry():
    config = MemoryConfig()
    assert config.il1.size == 32 * 1024 and config.il1.assoc == 2
    assert config.dl1.size == 32 * 1024 and config.dl1.assoc == 4
    assert config.dl1.line == 16
    assert config.l2.size == 512 * 1024 and config.l2.line == 64
    assert config.memory_latency == 150
