"""Snapshot/restore: a resumed run must be bit-identical to an
uninterrupted one, and incompatible images must be rejected loudly."""

import dataclasses
import json

import pytest

from repro.config import CheckpointPolicy, WarPolicy
from repro.core.machine import Machine, SimulationError
from repro.core.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    restore_snapshot,
    take_snapshot,
)
from repro.workloads import generate_trace


def _roundtrip(config, trace, at_cycle=500):
    """Run uninterrupted; separately snapshot at ``at_cycle``, push the
    image through real JSON, restore into a fresh machine, resume, and
    return (reference stats, resumed stats)."""
    machine = Machine(config)
    captured = {}

    def hook(m):
        if m.now == at_cycle and not captured:
            captured["data"] = json.loads(json.dumps(m.snapshot()))

    machine.add_cycle_hook(hook)
    reference = machine.run(trace)
    assert captured, f"run finished before cycle {at_cycle}"
    resumed = Machine(config).restore(captured["data"], trace).resume()
    return reference, resumed


_SCHEMES = {
    "base": lambda c: c,
    "ER": lambda c: dataclasses.replace(c, early_release=True),
    "PRI-refcount+ckptcount": lambda c: c.with_pri(
        WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT
    ),
    "PRI-ideal+lazy": lambda c: c.with_pri(
        WarPolicy.IDEAL, CheckpointPolicy.LAZY
    ),
    "PRI+ER": lambda c: dataclasses.replace(
        c.with_pri(), early_release=True
    ),
    "VP": lambda c: dataclasses.replace(
        c.with_pri(), virtual_physical=True
    ),
}


@pytest.mark.parametrize("scheme", sorted(_SCHEMES))
def test_resume_bit_identical(cfg4_real, gzip_trace, scheme):
    config = _SCHEMES[scheme](cfg4_real)
    reference, resumed = _roundtrip(config, gzip_trace)
    assert resumed.to_dict() == reference.to_dict()


def test_resume_bit_identical_with_checkers(cfg4_real, gzip_trace):
    """Oracle and auditor state must survive the round-trip too: the
    resumed run re-checks from the snapshot point, not from scratch."""
    config = cfg4_real.with_pri().with_oracle(interval=64).with_audit(
        interval=64
    )
    reference, resumed = _roundtrip(config, gzip_trace)
    assert resumed.to_dict() == reference.to_dict()
    assert resumed.oracle_commits == len(gzip_trace)
    assert resumed.audits > 0


def test_resume_bit_identical_8wide(cfg8_real, gzip_trace):
    reference, resumed = _roundtrip(cfg8_real.with_pri(), gzip_trace)
    assert resumed.to_dict() == reference.to_dict()


def _snapshot_at(config, trace, at_cycle=300):
    machine = Machine(config)
    captured = {}

    def hook(m):
        if m.now == at_cycle and not captured:
            captured["data"] = m.snapshot()

    machine.add_cycle_hook(hook)
    machine.run(trace)
    return captured["data"]


def test_snapshot_requires_running_machine(cfg4_real):
    with pytest.raises(SnapshotError, match="not started"):
        take_snapshot(Machine(cfg4_real))


def test_version_mismatch_rejected(cfg4_real, gzip_trace):
    data = _snapshot_at(cfg4_real, gzip_trace)
    assert data["version"] == SNAPSHOT_VERSION
    data["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(SnapshotError, match="version"):
        restore_snapshot(Machine(cfg4_real), data, gzip_trace)


def test_config_mismatch_rejected(cfg4_real, gzip_trace):
    data = _snapshot_at(cfg4_real, gzip_trace)
    other = cfg4_real.with_phys_regs(96)
    with pytest.raises(SnapshotError, match="config"):
        restore_snapshot(Machine(other), data, gzip_trace)


def test_trace_mismatch_rejected(cfg4_real, gzip_trace):
    data = _snapshot_at(cfg4_real, gzip_trace)
    other = generate_trace("gzip", 3000, seed=8, warmup=6000)
    with pytest.raises(SnapshotError, match="trace"):
        restore_snapshot(Machine(cfg4_real), data, other)


def test_restore_requires_fresh_machine(cfg4_real, gzip_trace):
    data = _snapshot_at(cfg4_real, gzip_trace)
    used = Machine(cfg4_real)
    used.run(gzip_trace)
    with pytest.raises(SnapshotError, match="fresh"):
        restore_snapshot(used, data, gzip_trace)


def test_resume_without_restore_rejected(cfg4_real):
    with pytest.raises(SimulationError, match="restore"):
        Machine(cfg4_real).resume()


def test_resume_ignores_stale_cycle_limit(cfg4_real, gzip_trace):
    """A snapshot taken under a cycle watchdog must not truncate the
    resumed run: resume(None) is unbounded, like run(None)."""
    machine = Machine(cfg4_real)
    captured = {}

    def hook(m):
        if m.now == 300 and not captured:
            captured["data"] = m.snapshot()

    machine.add_cycle_hook(hook)
    truncated = machine.run(gzip_trace, max_cycles=400)
    assert truncated.committed < len(gzip_trace)
    reference = Machine(cfg4_real).run(gzip_trace)
    resumed = Machine(cfg4_real).restore(captured["data"], gzip_trace).resume()
    assert resumed.to_dict() == reference.to_dict()
