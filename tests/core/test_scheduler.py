"""Issue-queue wakeup/select tests."""

import pytest

from repro.core.inflight import InFlight
from repro.core.scheduler import Scheduler
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import OpClass, RegClass


def _instr(seq):
    return InFlight(MicroOp(seq, 0x400000, OpClass.INT_ALU, dest=1), seq, seq, 0)


class TestInsert:
    def test_ready_when_no_unready_operands(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        assert s.pop_ready() is i

    def test_waits_for_wakeup(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [(RegClass.INT, 7)])
        assert s.pop_ready() is None
        s.wake(RegClass.INT, 7)
        assert s.pop_ready() is i

    def test_multiple_operands(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [(RegClass.INT, 7), (RegClass.FP, 3)])
        s.wake(RegClass.INT, 7)
        assert s.pop_ready() is None
        s.wake(RegClass.FP, 3)
        assert s.pop_ready() is i

    def test_capacity(self):
        s = Scheduler(1)
        s.insert(_instr(1), [])
        assert not s.has_space
        with pytest.raises(RuntimeError):
            s.insert(_instr(2), [])


class TestSelect:
    def test_oldest_first(self):
        s = Scheduler(4)
        a, b = _instr(5), _instr(2)
        s.insert(a, [])
        s.insert(b, [])
        assert s.pop_ready() is b
        assert s.pop_ready() is a

    def test_skips_squashed(self):
        s = Scheduler(4)
        a, b = _instr(1), _instr(2)
        s.insert(a, [])
        s.insert(b, [])
        a.squashed = True
        s.release_entry(a)
        assert s.pop_ready() is b

    def test_release_frees_slot(self):
        s = Scheduler(1)
        a = _instr(1)
        s.insert(a, [])
        s.release_entry(a)
        assert s.has_space
        s.release_entry(a)  # idempotent
        assert s.occupancy == 0


class TestPark:
    def test_extra_missing_defers_readiness(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        got = s.pop_ready()
        assert got is i
        # Re-park with only timer-based waits: must NOT be ready now.
        s.park(i, [], extra_missing=2)
        assert s.pop_ready() is None
        s.timer_wake(i)
        assert s.pop_ready() is None
        s.timer_wake(i)
        assert s.pop_ready() is i

    def test_timer_wake_ignores_dead_entries(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        s.pop_ready()
        s.park(i, [], extra_missing=1)
        i.squashed = True
        s.timer_wake(i)
        assert s.pop_ready() is None

    def test_wake_on_unwatched_register_is_noop(self):
        s = Scheduler(4)
        s.wake(RegClass.INT, 42)  # no waiters: nothing happens
