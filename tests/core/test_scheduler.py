"""Issue-queue wakeup/select tests."""

import pytest

from repro.core.inflight import InFlight
from repro.core.scheduler import Scheduler
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import OpClass, RegClass


def _instr(seq):
    return InFlight(MicroOp(seq, 0x400000, OpClass.INT_ALU, dest=1), seq, seq, 0)


class TestInsert:
    def test_ready_when_no_unready_operands(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        assert s.pop_ready() is i

    def test_waits_for_wakeup(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [(RegClass.INT, 7)])
        assert s.pop_ready() is None
        s.wake(RegClass.INT, 7)
        assert s.pop_ready() is i

    def test_multiple_operands(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [(RegClass.INT, 7), (RegClass.FP, 3)])
        s.wake(RegClass.INT, 7)
        assert s.pop_ready() is None
        s.wake(RegClass.FP, 3)
        assert s.pop_ready() is i

    def test_capacity(self):
        s = Scheduler(1)
        s.insert(_instr(1), [])
        assert not s.has_space
        with pytest.raises(RuntimeError):
            s.insert(_instr(2), [])


class TestSelect:
    def test_oldest_first(self):
        s = Scheduler(4)
        a, b = _instr(5), _instr(2)
        s.insert(a, [])
        s.insert(b, [])
        assert s.pop_ready() is b
        assert s.pop_ready() is a

    def test_skips_squashed(self):
        s = Scheduler(4)
        a, b = _instr(1), _instr(2)
        s.insert(a, [])
        s.insert(b, [])
        a.squashed = True
        s.release_entry(a)
        assert s.pop_ready() is b

    def test_release_frees_slot(self):
        s = Scheduler(1)
        a = _instr(1)
        s.insert(a, [])
        s.release_entry(a)
        assert s.has_space
        s.release_entry(a)  # idempotent
        assert s.occupancy == 0


class TestPark:
    def test_extra_missing_defers_readiness(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        got = s.pop_ready()
        assert got is i
        # Re-park with only timer-based waits: must NOT be ready now.
        s.park(i, [], extra_missing=2)
        assert s.pop_ready() is None
        s.timer_wake(i)
        assert s.pop_ready() is None
        s.timer_wake(i)
        assert s.pop_ready() is i

    def test_timer_wake_ignores_dead_entries(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        s.pop_ready()
        s.park(i, [], extra_missing=1)
        i.squashed = True
        s.timer_wake(i)
        assert s.pop_ready() is None

    def test_wake_on_unwatched_register_is_noop(self):
        s = Scheduler(4)
        s.wake(RegClass.INT, 42)  # no waiters: nothing happens


class TestWaitGenerations:
    """Regression tests for the stale-wake bug: registrations and timers
    left behind by an earlier park must never count against a later
    park's wait (they used to decrement ``instr.missing`` directly,
    waking replayed entries before their penalty elapsed)."""

    def test_replay_with_empty_unready_discards_stale_timer(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        assert s.pop_ready() is i
        # Verification failure: re-park awaiting one timer wakeup.
        old_token = s.park(i, [], extra_missing=1)
        # Second failure before the timer fires: replay with an empty
        # unready list.  The fresh park must leave the entry ready and
        # missing consistent...
        s.park(i, [], extra_missing=0)
        assert i.missing == 0
        # ...and the *stale* timer delivery must be ignored, not drive
        # missing negative or double-ready the entry.
        s.timer_wake(i, old_token)
        assert i.missing == 0
        assert s.pop_ready() is i
        assert s.pop_ready() is None

    def test_stale_timer_cannot_satisfy_new_wait(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [])
        assert s.pop_ready() is i
        old_token = s.park(i, [], extra_missing=1)
        # Replay with a genuine new wait before the old timer lands.
        new_token = s.park(i, [], extra_missing=1)
        assert new_token != old_token
        # The leftover timer from the first park arrives: it must NOT
        # count against the new generation's wait.
        s.timer_wake(i, old_token)
        assert i.missing == 1
        assert s.pop_ready() is None
        # Only the new generation's own timer releases the entry.
        s.timer_wake(i, new_token)
        assert s.pop_ready() is i

    def test_stale_register_wakeup_ignored(self):
        s = Scheduler(4)
        i = _instr(1)
        s.insert(i, [(RegClass.INT, 7)])
        # Replay before the producer broadcasts: now waiting on a timer
        # instead of the register.
        token = s.park(i, [], extra_missing=1)
        # The register broadcast from the first generation arrives.
        s.wake(RegClass.INT, 7)
        assert i.missing == 1
        assert s.pop_ready() is None
        s.timer_wake(i, token)
        assert s.pop_ready() is i
