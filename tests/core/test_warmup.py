"""Warmup (fast-forward stand-in) semantics."""


from repro.core.machine import Machine, simulate
from repro.workloads import generate_trace


def test_warmup_trains_predictors_and_caches():
    cold = generate_trace("gcc", 1500, seed=4, warmup=0)
    warm = generate_trace("gcc", 1500, seed=4, warmup=25000)
    from repro.config import four_wide

    cold_stats = simulate(four_wide(), cold)
    warm_stats = simulate(four_wide(), warm)
    assert warm_stats.il1_miss_rate < cold_stats.il1_miss_rate
    assert warm_stats.ipc > cold_stats.ipc


def test_warmup_counters_reset():
    """Warmup accesses must not pollute the timed statistics."""
    from repro.config import four_wide

    trace = generate_trace("gzip", 500, seed=4, warmup=5000)
    m = Machine(four_wide())
    m.run(trace)
    # The warmup pass touched ~5000 ops (~1500 data accesses, ~700 branch
    # predictions); the timed counters must reflect only the 500-op
    # region (plus wrong-path refetch inflation).
    assert m.stats.committed == 500
    timed_mem_ops = sum(1 for op in trace if op.mem_addr is not None)
    assert m.memory.dl1.accesses < 3 * timed_mem_ops
    assert m.branch_unit.predictions < 5000 * 0.14


def test_warmup_is_deterministic():
    from repro.config import four_wide

    trace = generate_trace("gzip", 800, seed=5, warmup=3000)
    a = simulate(four_wide(), trace)
    b = simulate(four_wide(), trace)
    assert a.cycles == b.cycles
