"""Property-based machine tests: random programs through every
reclamation scheme must commit fully, preserve dataflow (the machine
raises on any violation), and leave consistent state.

This is the failure-injection net for the PRI bookkeeping: free-list
duplicates, refcount leaks, checkpoint restore bugs, and WAR hazards all
surface here as SimulationError or invariant failures.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CheckpointPolicy, WarPolicy, four_wide
from repro.core.machine import Machine
from repro.workloads import TraceBuilder

_COLD_BASE = 0x4000_0000


@st.composite
def programs(draw):
    """A random short program over 8 registers with branches and loads."""
    n = draw(st.integers(min_value=5, max_value=100))
    ops = []
    for _ in range(n):
        ops.append(
            (
                draw(st.sampled_from(["alu", "narrow", "load", "store", "branch"])),
                draw(st.integers(min_value=1, max_value=8)),  # dest
                draw(st.integers(min_value=1, max_value=8)),  # src
                draw(st.integers(min_value=0, max_value=1 << 40)),  # value
                draw(st.booleans()),  # taken
            )
        )
    return ops


def _build(ops):
    b = TraceBuilder()
    cold = _COLD_BASE
    for kind, dest, src, value, taken in ops:
        if kind == "alu":
            b.alu(dest=dest, value=value, srcs=[src])
        elif kind == "narrow":
            b.alu(dest=dest, value=value & 0x3F, srcs=[src])
        elif kind == "load":
            b.load(dest=dest, addr=cold, value=value, base=src)
            cold += 64
        elif kind == "store":
            b.store(data=src, addr=cold - 64 if cold > _COLD_BASE else cold)
        else:
            b.branch(taken=taken, cond=src)
    return b.build("prop")


_CONFIGS = [
    four_wide(),
    four_wide().with_early_release(),
    four_wide().with_pri(WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT),
    four_wide().with_pri(WarPolicy.REFCOUNT, CheckpointPolicy.LAZY),
    four_wide().with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY),
    four_wide().with_pri(WarPolicy.REPLAY, CheckpointPolicy.LAZY),
    four_wide().with_pri().with_early_release(),
    four_wide().with_virtual_physical(),
    four_wide().with_virtual_physical().with_pri(),
]
_CONFIGS = [
    dataclasses.replace(c, int_phys_regs=38, fp_phys_regs=38, perfect_icache=True)
    for c in _CONFIGS
]


@given(programs(), st.integers(min_value=0, max_value=len(_CONFIGS) - 1))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_program_runs_clean(ops, config_index):
    cfg = _CONFIGS[config_index]
    trace = _build(ops)
    m = Machine(cfg)
    stats = m.run(trace)
    assert stats.committed == len(trace)
    m.assert_invariants()
    if cfg.pri.war_policy != WarPolicy.REPLAY:
        for rc in m.refcounts.values():
            rc.assert_clean()


@given(programs())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_schemes_agree_on_commit_count(ops):
    """Every scheme executes the same program to completion — schemes
    change timing, never architectural behaviour."""
    trace = _build(ops)
    counts = set()
    for cfg in (_CONFIGS[0], _CONFIGS[2], _CONFIGS[6]):
        counts.add(Machine(cfg).run(trace).committed)
    assert counts == {len(trace)}
