"""Statistics container tests."""

import pytest

from repro.core.stats import LifetimeStats, SimStats


class TestLifetimeStats:
    def test_normal_record(self):
        life = LifetimeStats()
        life.record(alloc=10, write=14, last_read=20, release=30)
        assert life.avg_alloc_to_write == 4
        assert life.avg_write_to_last_read == 6
        assert life.avg_last_read_to_release == 10
        assert life.avg_total == 20

    def test_never_written(self):
        life = LifetimeStats()
        life.record(alloc=10, write=None, last_read=None, release=18)
        assert life.avg_alloc_to_write == 8
        assert life.avg_write_to_last_read == 0
        assert life.avg_last_read_to_release == 0

    def test_never_read(self):
        life = LifetimeStats()
        life.record(alloc=10, write=12, last_read=None, release=20)
        assert life.avg_write_to_last_read == 0
        assert life.avg_last_read_to_release == 8

    def test_read_before_write_clamped(self):
        life = LifetimeStats()
        life.record(alloc=0, write=10, last_read=5, release=20)
        assert life.avg_write_to_last_read == 0
        assert life.avg_last_read_to_release == 10

    def test_averaging(self):
        life = LifetimeStats()
        life.record(0, 2, 4, 10)
        life.record(0, 4, 8, 20)
        assert life.releases == 2
        assert life.avg_alloc_to_write == 3
        assert life.avg_total == 15

    def test_empty(self):
        assert LifetimeStats().avg_total == 0.0


class TestSimStats:
    def test_ipc(self):
        stats = SimStats()
        stats.cycles = 100
        stats.committed = 150
        assert stats.ipc == pytest.approx(1.5)

    def test_ipc_empty(self):
        assert SimStats().ipc == 0.0

    def test_occupancy(self):
        stats = SimStats()
        stats.cycles = 10
        stats.occupancy_sum["int"] = 500
        assert stats.avg_occupancy("int") == 50

    def test_summary_mentions_key_numbers(self):
        stats = SimStats()
        stats.cycles = 10
        stats.committed = 20
        text = stats.summary()
        assert "ipc=2.000" in text
        assert "cycles=10" in text
