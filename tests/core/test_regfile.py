"""Physical register file lifecycle tests."""

import pytest

from repro.core.regfile import NEVER, PhysRegFile, RegState
from repro.core.stats import LifetimeStats


@pytest.fixture
def rf():
    return PhysRegFile(8, "int")


class TestAllocate:
    def test_lifecycle(self, rf):
        preg = rf.allocate(lreg=3, owner_seq=7, cycle=10)
        assert rf.state[preg] == RegState.ALLOC
        assert rf.lreg[preg] == 3
        assert rf.owner_seq[preg] == 7
        assert rf.allocated_count == 1
        rf.write(preg, 0x55, cycle=15)
        assert rf.state[preg] == RegState.WRITTEN
        assert rf.value[preg] == 0x55
        rf.read_stamp(preg, 20)
        assert rf.release(preg, 30)
        assert rf.state[preg] == RegState.FREE
        assert rf.allocated_count == 0

    def test_exhaustion(self, rf):
        for _ in range(8):
            assert rf.allocate(0, 0, 0) is not None
        assert rf.allocate(0, 0, 0) is None

    def test_generation_bumps(self, rf):
        preg = rf.allocate(0, 0, 0)
        gen1 = rf.gen[preg]
        rf.release(preg, 1)
        # Ordered free list: the lowest-numbered free register — the one
        # just released — comes straight back.
        again = rf.allocate(0, 0, 0)
        assert again == preg
        assert rf.gen[preg] == gen1 + 1
        assert not rf.gen_matches(preg, gen1)

    def test_generation_bumps_fifo(self):
        rf = PhysRegFile(8, "int", alloc_policy="fifo")
        preg = rf.allocate(0, 0, 0)
        gen1 = rf.gen[preg]
        rf.release(preg, 1)
        # FIFO free list: drain the rest so the same register comes back.
        for _ in range(7):
            rf.allocate(0, 0, 0)
        again = rf.allocate(0, 0, 0)
        assert again == preg
        assert rf.gen[preg] == gen1 + 1
        assert not rf.gen_matches(preg, gen1)

    def test_allocate_resets_scheduling_state(self, rf):
        preg = rf.allocate(0, 0, 0)
        rf.pred_ready[preg] = 5
        rf.ready_select[preg] = 5
        rf.inline_pending[preg] = True
        rf.retire_pending[preg] = True
        rf.release(preg, 1)
        assert rf.allocate(0, 0, 0) == preg
        assert rf.pred_ready[preg] == NEVER
        assert rf.ready_select[preg] == NEVER
        assert not rf.inline_pending[preg]
        assert not rf.retire_pending[preg]

    def test_extend_adds_fresh_registers(self, rf):
        taken = [rf.allocate(0, 0, 0) for _ in range(8)]
        assert rf.free_list.empty
        rf.extend(12)
        assert rf.num_regs == 12
        assert len(rf.free_list) == 4
        assert rf.allocate(0, 0, 0) == 8
        assert rf.gen[9] == 0 and rf.state[9] == RegState.FREE
        rf.assert_consistent()
        assert all(p is not None for p in taken)
        with pytest.raises(ValueError):
            rf.extend(4)


class TestRelease:
    def test_duplicate_release_tolerated(self, rf):
        preg = rf.allocate(0, 0, 0)
        assert rf.release(preg, 1) is True
        assert rf.release(preg, 2) is False
        assert rf.free_list.duplicate_releases >= 1

    def test_lifetime_recorded(self, rf):
        life = LifetimeStats()
        preg = rf.allocate(0, 0, cycle=10)
        rf.write(preg, 1, cycle=14)
        rf.read_stamp(preg, 20)
        rf.read_stamp(preg, 18)  # earlier read does not move last-read back
        rf.release(preg, 30, life)
        assert life.releases == 1
        assert life.alloc_to_write == 4
        assert life.write_to_last_read == 6
        assert life.last_read_to_release == 10

    def test_architectural_allocation(self, rf):
        preg = rf.allocate_architectural(5, 0xAB)
        assert rf.state[preg] == RegState.WRITTEN
        assert rf.value[preg] == 0xAB
        assert rf.ready_select[preg] == 0


class TestConsistency:
    def test_assert_consistent(self, rf):
        rf.allocate(0, 0, 0)
        rf.assert_consistent()
        rf.allocated_count += 1  # corrupt on purpose
        with pytest.raises(AssertionError):
            rf.assert_consistent()
