"""Memory behaviour through the pipeline: load latencies, forwarding,
speculative scheduling with selective replay."""

import dataclasses


from repro.core.machine import simulate
from repro.workloads import TraceBuilder

_HOT = 0x1000_0000
_COLD = 0x4000_0000


def _load_chain(addr, n=1, pad=0):
    """A load followed by a dependent chain; padding isolates timing."""
    b = TraceBuilder()
    b.alu(dest=1, value=addr)
    b.load(dest=2, addr=addr, value=7, base=1)
    for i in range(n):
        b.alu(dest=2, value=8 + i, srcs=[2])
    b.nops(pad, dest=9)
    return b.build()


class TestLoadLatency:
    def test_cold_load_pays_memory_latency(self, cfg4):
        cold = simulate(cfg4, _load_chain(_COLD))
        # The dependent chain serialises behind the ~164-cycle miss.
        assert cold.cycles >= 160
        nops = TraceBuilder()
        nops.nops(3)
        assert simulate(cfg4, nops.build()).cycles < 40

    def test_warm_load_adds_no_stall(self, cfg4):
        """Differential: appending a warm load (+ dependent) to a trace
        that already warmed the line costs only a few cycles, unlike the
        ~164 a second miss would cost.  (Total time is dominated by the
        warming load either way — commit is in-order.)"""

        def trace(with_warm_load):
            b = TraceBuilder()
            b.alu(dest=1, value=_HOT)
            b.load(dest=3, addr=_HOT, value=1, base=1)  # cold: warms line
            b.nops(80, dest=9)
            if with_warm_load:
                b.load(dest=2, addr=_HOT, value=1, base=1)
                b.alu(dest=4, value=2, srcs=[2])
            return b.build()

        with_load = simulate(cfg4, trace(True))
        without = simulate(cfg4, trace(False))
        assert with_load.cycles - without.cycles < 15

    def test_dl1_miss_rate_reported(self, cfg4):
        stats = simulate(cfg4, _load_chain(_COLD))
        assert stats.dl1_miss_rate > 0


class TestForwarding:
    def test_store_to_load_forwarding_avoids_miss(self, cfg4):
        with_store = TraceBuilder()
        with_store.alu(dest=1, value=5)
        with_store.store(data=1, addr=_COLD)
        with_store.load(dest=2, addr=_COLD, value=99)
        with_store.alu(dest=3, value=100, srcs=[2])
        forwarded = simulate(cfg4, with_store.build())

        without = TraceBuilder()
        without.alu(dest=1, value=5)
        without.alu(dest=9, value=0)
        without.load(dest=2, addr=_COLD, value=99)
        without.alu(dest=3, value=100, srcs=[2])
        missed = simulate(cfg4, without.build())

        assert forwarded.cycles + 100 < missed.cycles


class TestSpeculativeScheduling:
    def test_miss_shadow_dependents_replay(self, cfg4):
        """A dependent issued assuming a DL1 hit must replay when the
        load actually misses (Table 1's selective recovery)."""
        stats = simulate(cfg4, _load_chain(_COLD, n=3))
        assert stats.issue_replays >= 1

    def test_hit_causes_no_replay(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=_HOT)
        b.load(dest=2, addr=_HOT, value=1, base=1)  # cold: replays possible
        trace_warm = TraceBuilder()
        trace_warm.alu(dest=1, value=_HOT)
        trace_warm.load(dest=4, addr=_HOT, value=1, base=1)
        # Give the line time to fill before the dependent load chain.
        trace_warm.nops(80, dest=9)
        trace_warm.load(dest=2, addr=_HOT, value=1, base=1)
        trace_warm.alu(dest=3, value=2, srcs=[2])
        stats = simulate(cfg4, trace_warm.build())
        # Only the first (cold) load can trigger replays; the warm one
        # keeps its dependent on schedule.
        assert stats.committed == 84

    def test_replay_disabled_counts_nothing_without_misses(self, cfg4):
        b = TraceBuilder()
        b.nops(50)
        stats = simulate(cfg4, b.build())
        assert stats.issue_replays == 0


class TestLsqPressure:
    def test_lsq_full_stalls_rename(self, cfg4):
        cfg = dataclasses.replace(cfg4, lsq_entries=2)
        b = TraceBuilder()
        b.alu(dest=1, value=_COLD)
        for i in range(12):
            b.load(dest=2 + (i % 4), addr=_COLD + 64 * i, value=i, base=1)
        stats = simulate(cfg, b.build())
        assert stats.committed == 13
        assert stats.rename_stall_other > 0
