"""Cross-scheme integration tests on realistic generated workloads.

These assert the orderings the paper's evaluation hinges on, using small
but real traces from the profile generator.  All schemes must run with
the dataflow checker silent, and leave consistent machine state.
"""

import dataclasses

import pytest

from repro.config import CheckpointPolicy, WarPolicy, eight_wide, four_wide
from repro.core.machine import Machine, simulate

_SCHEMES = {
    "base": lambda c: c,
    "ER": lambda c: c.with_early_release(),
    "PRI": lambda c: c.with_pri(),
    "PRI-lazy": lambda c: c.with_pri(WarPolicy.REFCOUNT, CheckpointPolicy.LAZY),
    "PRI-ideal": lambda c: c.with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY),
    "PRI+ER": lambda c: c.with_pri().with_early_release(),
    "inf": lambda c: dataclasses.replace(c, int_phys_regs=4096, fp_phys_regs=4096),
}


@pytest.fixture(scope="module", params=["gzip", "mcf", "swim"])
def workload(request):
    from repro.workloads import generate_trace

    return generate_trace(request.param, 2500, seed=11, warmup=6000)


@pytest.mark.parametrize("scheme", sorted(_SCHEMES))
@pytest.mark.parametrize("width_cfg", [four_wide, eight_wide], ids=["4w", "8w"])
def test_scheme_runs_clean(workload, scheme, width_cfg):
    cfg = _SCHEMES[scheme](width_cfg())
    m = Machine(cfg)
    stats = m.run(workload)
    assert stats.committed == len(workload)
    assert stats.ipc > 0
    m.assert_invariants()


class TestOrderings:
    @pytest.fixture(scope="class")
    def results(self, workload):
        cfg = four_wide()
        return {name: simulate(mk(cfg), workload) for name, mk in _SCHEMES.items()}

    def test_every_scheme_at_least_base(self, results):
        for name, stats in results.items():
            if name == "base":
                continue
            assert stats.ipc >= results["base"].ipc * 0.995, name

    def test_inf_is_the_upper_bound(self, results):
        for name, stats in results.items():
            assert results["inf"].ipc >= stats.ipc * 0.995, name

    def test_ideal_at_least_refcount(self, results):
        assert results["PRI-ideal"].ipc >= results["PRI"].ipc * 0.995

    def test_lazy_at_least_ckptcount(self, results):
        assert results["PRI-lazy"].ipc >= results["PRI"].ipc * 0.995

    def test_pri_reduces_occupancy(self, results):
        assert (results["PRI"].avg_occupancy("int")
                <= results["base"].avg_occupancy("int"))

    def test_pri_plus_er_reduces_lifetime_most(self, results):
        """Figure 8: PRI+ER shows the largest lifetime reduction."""
        base = results["base"].lifetime("int").avg_total
        pri = results["PRI"].lifetime("int").avg_total
        both = results["PRI+ER"].lifetime("int").avg_total
        assert pri < base
        assert both < base
        assert both <= pri * 1.05

    def test_phase3_is_what_shrinks(self, results):
        """The last-read→release phase is the one the schemes attack."""
        base = results["base"].lifetime("int")
        both = results["PRI+ER"].lifetime("int")
        assert both.avg_last_read_to_release < base.avg_last_read_to_release
