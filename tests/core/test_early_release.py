"""Early-release (prior work [27]) behaviour, and its integration with
PRI (paper Section 3.5)."""

import dataclasses


from repro.core.machine import Machine, simulate
from repro.workloads import TraceBuilder

_WIDE = 0x5555_5555_5


def _er_trace(n_churn=50):
    b = TraceBuilder()
    b.alu(dest=1, value=_WIDE)           # producer
    b.alu(dest=4, value=_WIDE + 1, srcs=[1])  # the only read
    b.alu(dest=1, value=_WIDE + 2)       # redefiner: unmaps the old reg
    for i in range(n_churn):
        b.alu(dest=5 + (i % 3), value=0x7000_0000 + i)
    return b.build("er")


class TestEarlyRelease:
    def test_frees_before_redefiner_commits(self, cfg4):
        stats = simulate(cfg4.with_early_release(), _er_trace())
        assert stats.er_early_frees >= 1

    def test_base_machine_never_frees_early(self, cfg4):
        stats = simulate(cfg4, _er_trace())
        assert stats.er_early_frees == 0
        assert stats.pri_early_frees == 0

    def test_helps_under_register_pressure(self, cfg4):
        trace = _er_trace(n_churn=150)
        tight = dataclasses.replace(cfg4, int_phys_regs=38)
        base = simulate(tight, trace)
        er = simulate(tight.with_early_release(), trace)
        assert er.cycles <= base.cycles

    def test_er_applies_to_wide_values_pri_does_not(self, cfg4):
        """ER's advantage over PRI: it frees registers regardless of
        value width.  A wide-value-only workload gets ER frees but no
        PRI inlines."""
        trace = _er_trace()
        er = simulate(cfg4.with_early_release(), trace)
        pri = simulate(cfg4.with_pri(), trace)
        assert er.er_early_frees >= 1
        assert pri.inlined == 0


class TestErWithBranches:
    def test_commit_scoped_checkpoint_pins(self, cfg4):
        """A branch between producer and redefiner holds a commit-scoped
        reference: the register cannot free while the branch could still
        be squashed, and the run stays consistent."""
        b = TraceBuilder()
        b.alu(dest=1, value=_WIDE)
        b.branch(taken=False, cond=1)
        b.alu(dest=4, value=_WIDE + 1, srcs=[1])
        b.alu(dest=1, value=_WIDE + 2)
        for i in range(40):
            b.alu(dest=5 + (i % 3), value=0x7000_0000 + i)
        stats = simulate(cfg4.with_early_release(), b.build())
        assert stats.committed == 44
        assert stats.er_early_frees >= 1

    def test_recovery_with_er(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=_WIDE)
        b.branch(taken=True, cond=1, target=0x400800)  # cold: mispredicts
        b.alu(dest=4, value=_WIDE + 1, srcs=[1])
        b.alu(dest=1, value=_WIDE + 2)
        for i in range(40):
            b.alu(dest=5 + (i % 3), value=0x7000_0000 + i)
        stats = simulate(cfg4.with_early_release(), b.build())
        assert stats.committed == 44
        assert stats.mispredicts >= 1


class TestPriPlusEr:
    def test_combination_runs_clean_on_real_workload(self, cfg4_real, gzip_trace):
        """Regression for the PRI+ER integration hazard: ER freeing a
        register between writeback and the PRI retire check would let a
        stale late map update clobber a new same-logical-register
        mapping.  The retire_pending pin prevents it."""
        cfg = cfg4_real.with_pri().with_early_release()
        m = Machine(cfg)
        stats = m.run(gzip_trace)
        assert stats.committed == len(gzip_trace)
        m.assert_invariants()
        for rc in m.refcounts.values():
            rc.assert_clean()

    def test_both_mechanisms_fire(self, cfg4_real, gzip_trace):
        stats = simulate(cfg4_real.with_pri().with_early_release(), gzip_trace)
        assert stats.inlined > 0
        assert stats.er_early_frees > 0
        assert stats.pri_early_frees > 0

    def test_combination_at_least_as_good_as_each(self, cfg4_real, gzip_trace):
        base = simulate(cfg4_real, gzip_trace)
        er = simulate(cfg4_real.with_early_release(), gzip_trace)
        pri = simulate(cfg4_real.with_pri(), gzip_trace)
        both = simulate(cfg4_real.with_pri().with_early_release(), gzip_trace)
        assert both.ipc >= er.ipc * 0.99
        assert both.ipc >= pri.ipc * 0.99
        assert both.ipc >= base.ipc
