"""Physical register inlining behaviour tests.

These exercise the mechanism on hand-built traces: the significance
check, the late map update and its Figure 7 WAW guard, early freeing,
duplicate deallocation at the redefiner's commit, FP inlining rules, and
the width-threshold boundary.
"""

import dataclasses

import pytest

from repro.core.machine import simulate
from repro.isa.values import MAX_UINT64, pack_fp
from repro.workloads import TraceBuilder

_COLD = 0x4000_0000


def _pri(cfg):
    return cfg.with_pri()


def _narrow_producer_trace(value=5, fillers=60):
    """One narrow producer, then unrelated work so retirement happens
    long before the trace ends."""
    b = TraceBuilder()
    b.alu(dest=1, value=value)
    for i in range(fillers):
        b.alu(dest=2 + (i % 5), value=0x1000_0000 + i)
    return b.build()


class TestInlining:
    def test_narrow_value_is_inlined(self, cfg4):
        stats = simulate(_pri(cfg4), _narrow_producer_trace(5))
        assert stats.inline_attempts >= 1
        assert stats.inlined >= 1

    def test_wide_value_is_not(self, cfg4):
        stats = simulate(_pri(cfg4), _narrow_producer_trace(0x12345678, fillers=10))
        # Fillers write narrow values; check the wide producer alone.
        b = TraceBuilder()
        b.alu(dest=1, value=0x12345678)
        stats = simulate(_pri(cfg4), b.build())
        assert stats.inline_attempts == 0
        assert stats.inlined == 0

    @pytest.mark.parametrize("value,inlined", [
        (63, True), (64, False), (-64, True), (-65, False), (0, True), (-1, True),
    ])
    def test_7_bit_threshold_4wide(self, cfg4, value, inlined):
        b = TraceBuilder()
        b.alu(dest=1, value=value)
        b.nops(30, dest=2, value=0x12345678)
        stats = simulate(_pri(cfg4), b.build())
        assert (stats.inlined == 1) == inlined

    @pytest.mark.parametrize("value,inlined", [
        (511, True), (512, False), (-512, True), (-513, False),
    ])
    def test_10_bit_threshold_8wide(self, cfg8, value, inlined):
        b = TraceBuilder()
        b.alu(dest=1, value=value)
        b.nops(30, dest=2, value=0x12345678)
        stats = simulate(_pri(cfg8), b.build())
        assert (stats.inlined == 1) == inlined

    def test_consumer_after_inline_reads_immediate(self, cfg4):
        """A consumer renamed long after the producer retired must read
        the inlined value from the map (dataflow asserts correctness)."""
        b = TraceBuilder()
        b.alu(dest=1, value=5)
        b.nops(40, dest=2, value=0x12345678)
        b.alu(dest=3, value=6, srcs=[1])
        stats = simulate(_pri(cfg4), b.build())
        assert stats.committed == 42
        assert stats.inlined >= 1


class TestFpInlining:
    def test_all_zero_pattern_inlined(self, cfg4):
        b = TraceBuilder()
        b.fp(dest=1, value=0)
        b.nops(30, dest=2, value=0x12345678)
        stats = simulate(_pri(cfg4), b.build())
        assert stats.inlined >= 1

    def test_all_ones_pattern_inlined(self, cfg4):
        b = TraceBuilder()
        b.fp(dest=1, value=MAX_UINT64)
        b.nops(30, dest=2, value=0x12345678)
        assert simulate(_pri(cfg4), b.build()).inlined >= 1

    def test_ordinary_double_not_inlined(self, cfg4):
        b = TraceBuilder()
        b.fp(dest=1, value=pack_fp(1.5))
        b.nops(30, dest=2, value=0x12345678)
        stats = simulate(_pri(cfg4), b.build())
        assert stats.inlined == 0

    def test_fp_inline_can_be_disabled(self, cfg4):
        cfg = cfg4.with_pri(inline_fp=False)
        b = TraceBuilder()
        b.fp(dest=1, value=0)
        b.nops(30, dest=2, value=0x12345678)
        # NOTE: inline_fp gating happens in the machine config plumbing.
        stats = simulate(cfg, b.build())
        assert stats.committed == 31


class TestWawGuard:
    def test_late_update_dropped_after_remap(self, cfg4):
        """Figure 7: the producer's result arrives after a younger writer
        remapped the register — the map write must be dropped."""
        b = TraceBuilder()
        b.alu(dest=1, value=_COLD)
        b.load(dest=2, addr=_COLD, value=5, base=1)  # narrow, but slow
        b.alu(dest=2, value=90)  # redefines r2 before the load retires
        b.nops(30, dest=3, value=0x12345678)
        b.alu(dest=4, value=1, srcs=[2])  # must read 90, not 5
        stats = simulate(_pri(cfg4), b.build())
        assert stats.inline_waw_dropped >= 1
        assert stats.committed == 34


class TestEarlyFree:
    def test_inlined_register_freed_early(self, cfg4):
        stats = simulate(_pri(cfg4), _narrow_producer_trace(5))
        assert stats.pri_early_frees >= 1

    def test_redefiner_after_inline_frees_nothing(self, cfg4):
        """A redefiner renamed *after* the inline finds an immediate in
        the map — it records no previous register, so no duplicate
        deallocation arises on this path (the Figure 7 check is what
        makes that safe)."""
        b = TraceBuilder()
        b.alu(dest=1, value=5)  # inlined and freed early
        b.nops(40, dest=2, value=0x12345678)
        b.alu(dest=1, value=0x7777777)  # redefiner sees the immediate
        b.nops(20, dest=3, value=0x12345678)
        stats = simulate(_pri(cfg4), b.build())
        assert stats.pri_early_frees >= 1
        assert stats.duplicate_deallocs == 0

    def test_er_redefiner_commit_is_duplicate_dealloc(self, cfg4):
        """Under early release the redefiner *does* hold a stale previous
        pointer: its commit re-frees the register the ER logic already
        freed — the duplicate deallocation Section 3.2 requires the free
        list to tolerate."""
        b = TraceBuilder()
        b.alu(dest=1, value=0x5555555)
        b.alu(dest=4, value=0x666666, srcs=[1])  # last read of r1
        b.alu(dest=1, value=0x7777777)  # unmaps; ER frees the old register
        b.nops(40, dest=2, value=0x12345678)
        stats = simulate(cfg4.with_early_release(), b.build())
        assert stats.er_early_frees >= 1
        assert stats.duplicate_deallocs >= 1

    def test_occupancy_reduced_on_real_workload(self, cfg4_real, gzip_trace):
        base = simulate(cfg4_real, gzip_trace)
        pri = simulate(_pri(cfg4_real), gzip_trace)
        assert pri.avg_occupancy("int") < base.avg_occupancy("int")

    def test_lifetime_reduced_on_real_workload(self, cfg4_real, gzip_trace):
        base = simulate(cfg4_real, gzip_trace)
        pri = simulate(_pri(cfg4_real), gzip_trace)
        assert pri.lifetime("int").avg_total < base.lifetime("int").avg_total


class TestLoadImmediateExtension:
    """Paper §6 (future work): a load-immediate of a narrow value acts as
    a compiler dead-register hint — the value goes straight into the map
    at rename and no physical register is allocated at all."""

    def _cfg(self, cfg):
        return cfg.with_pri(inline_on_load_immediate=True)

    def test_no_register_allocated(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=5)  # no sources: a load-immediate
        b.alu(dest=2, value=6, srcs=[1])
        stats = simulate(self._cfg(cfg4), b.build())
        assert stats.committed == 2
        assert stats.inlined >= 1

    def test_reduces_register_stalls(self, cfg4):
        """With a tiny register file, li-inlining avoids allocation
        stalls that the plain machine hits."""
        b = TraceBuilder()
        for i in range(120):
            b.alu(dest=1 + (i % 8), value=i % 50)  # all load-immediates
        trace = b.build()
        tight = dataclasses.replace(cfg4, int_phys_regs=36)
        base = simulate(tight, trace)
        li = simulate(self._cfg(tight), trace)
        assert li.cycles <= base.cycles
        assert li.rename_stall_regs <= base.rename_stall_regs
