"""End-to-end pipeline behaviour on hand-built traces.

These tests pin down the timing model: front-end depth, back-to-back
dependent issue, issue width, commit order.  Every run also implicitly
verifies dataflow (the machine raises SimulationError on any value or
generation mismatch).
"""


from repro.core.machine import Machine, simulate
from repro.isa.opcodes import OpClass
from repro.workloads import TraceBuilder


def _chain(n, latency_class=OpClass.INT_ALU):
    b = TraceBuilder()
    b.alu(dest=1, value=1)
    for i in range(n - 1):
        b.alu(dest=1, value=i + 2, srcs=[1], op_class=latency_class)
    return b.build("chain")


def _independent(n):
    b = TraceBuilder()
    for i in range(n):
        b.alu(dest=1 + (i % 8), value=i)
    return b.build("independent")


class TestBasics:
    def test_empty_trace(self, cfg4):
        stats = simulate(cfg4, TraceBuilder().build())
        assert stats.committed == 0

    def test_single_instruction_pipeline_depth(self, cfg4):
        stats = simulate(cfg4, _independent(1))
        assert stats.committed == 1
        # Fetch at cycle 1, rename at 3, select at 4, complete at 9,
        # retire at 10, commit at 10.
        assert stats.cycles == 10

    def test_all_instructions_commit(self, cfg4):
        stats = simulate(cfg4, _independent(100))
        assert stats.committed == 100
        assert stats.renamed >= 100

    def test_max_insts(self, cfg4):
        stats = simulate(cfg4, _independent(100), max_insts=20)
        assert stats.committed == 20

    def test_max_cycles_cutoff(self, cfg4):
        stats = simulate(cfg4, _independent(100), max_cycles=5)
        assert stats.committed == 0
        assert stats.cycles == 5


class TestThroughput:
    def test_dependent_chain_runs_at_ipc_1(self, cfg4):
        n = 100
        stats = simulate(cfg4, _chain(n))
        # Back-to-back wakeup: one per cycle plus pipeline fill.
        assert n + 8 <= stats.cycles <= n + 20

    def test_independent_ops_reach_machine_width(self, cfg4):
        stats = simulate(cfg4, _independent(400))
        assert stats.ipc > 3.0

    def test_eight_wide_is_faster(self, cfg8):
        # With 64 physical registers the 8-wide machine is register-bound
        # (the paper's premise), so lift the register limit here.
        import dataclasses

        cfg = dataclasses.replace(cfg8, int_phys_regs=512, fp_phys_regs=512)
        stats = simulate(cfg, _independent(400))
        assert stats.ipc > 5.0

    def test_width_4_is_register_bound_at_64_regs(self, cfg8):
        """Companion to the above: the stock 8-wide/64-reg machine cannot
        reach its width on this workload — register pressure caps it."""
        stats = simulate(cfg8, _independent(400))
        assert stats.ipc < 5.0
        assert stats.rename_stall_regs > 0

    def test_mul_chain_runs_at_latency_3(self, cfg4):
        n = 60
        stats = simulate(cfg4, _chain(n, OpClass.INT_MUL))
        assert stats.cycles >= 3 * n

    def test_div_chain_runs_at_latency_20(self, cfg4):
        n = 10
        stats = simulate(cfg4, _chain(n, OpClass.INT_DIV))
        assert stats.cycles >= 20 * (n - 1)


class TestDataflow:
    def test_zero_register_reads_zero(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=0, srcs=[31])  # r31 is the zero register
        stats = simulate(cfg4, b.build())
        assert stats.committed == 1

    def test_initial_values_observed(self, cfg4):
        b = TraceBuilder(initial_int=[7] * 32)
        b.alu(dest=1, value=3, srcs=[5])
        stats = simulate(cfg4, b.build())
        assert stats.committed == 1

    def test_long_mixed_dataflow(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=100)
        for i in range(200):
            b.alu(dest=2 + (i % 6), value=i * 3, srcs=[1 + (i % 7)])
        stats = simulate(cfg4, b.build())
        assert stats.committed == 201

    def test_same_register_both_sources(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=9)
        b.alu(dest=2, value=18, srcs=[1, 1])
        assert simulate(cfg4, b.build()).committed == 2


class TestDeterminism:
    def test_same_run_twice(self, cfg4, gzip_trace):
        a = simulate(cfg4, gzip_trace)
        b = simulate(cfg4, gzip_trace)
        assert a.cycles == b.cycles
        assert a.committed == b.committed
        assert a.mispredicts == b.mispredicts
        assert a.issue_replays == b.issue_replays


class TestInvariants:
    def test_end_state_consistent(self, cfg4, gzip_trace):
        m = Machine(cfg4.with_pri())
        m.run(gzip_trace)
        m.assert_invariants()
        for rc in m.refcounts.values():
            rc.assert_clean()

    def test_rename_stalls_counted_when_registers_tight(self, gzip_trace):
        import dataclasses

        from repro.config import four_wide

        cfg = dataclasses.replace(four_wide(), int_phys_regs=40, fp_phys_regs=40)
        stats = simulate(cfg, gzip_trace)
        assert stats.rename_stall_regs > 0
