"""Load/store queue tests."""

import pytest

from repro.core.inflight import InFlight
from repro.core.lsq import LoadStoreQueue
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import OpClass


def _store(seq, addr):
    return InFlight(MicroOp(seq, 0, OpClass.STORE, mem_addr=addr), seq, seq, 0)


def _load(seq, addr):
    return InFlight(MicroOp(seq, 0, OpClass.LOAD, dest=1, mem_addr=addr),
                    seq, seq, 0)


class TestOccupancy:
    def test_insert_remove(self):
        q = LoadStoreQueue(2)
        s = _store(1, 0x100)
        q.insert(s)
        assert q.occupancy == 1
        q.remove(s)
        assert q.occupancy == 0

    def test_capacity(self):
        q = LoadStoreQueue(1)
        q.insert(_store(1, 0x100))
        assert not q.has_space
        with pytest.raises(RuntimeError):
            q.insert(_store(2, 0x200))

    def test_underflow_detected(self):
        q = LoadStoreQueue(2)
        s = _store(1, 0x100)
        q.insert(s)
        q.remove(s)
        with pytest.raises(RuntimeError):
            q.remove(s)


class TestForwarding:
    def test_older_store_forwards(self):
        q = LoadStoreQueue(4)
        q.insert(_store(1, 0x100))
        assert q.forwarding_store(_load(2, 0x100))

    def test_younger_store_does_not_forward(self):
        q = LoadStoreQueue(4)
        q.insert(_store(5, 0x100))
        assert not q.forwarding_store(_load(2, 0x100))

    def test_different_address_does_not_forward(self):
        q = LoadStoreQueue(4)
        q.insert(_store(1, 0x100))
        assert not q.forwarding_store(_load(2, 0x108))

    def test_squashed_store_does_not_forward(self):
        q = LoadStoreQueue(4)
        s = _store(1, 0x100)
        q.insert(s)
        s.squashed = True
        assert not q.forwarding_store(_load(2, 0x100))

    def test_removed_store_does_not_forward(self):
        q = LoadStoreQueue(4)
        s = _store(1, 0x100)
        q.insert(s)
        q.remove(s)
        assert not q.forwarding_store(_load(2, 0x100))
