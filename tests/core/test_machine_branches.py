"""Branch handling through the pipeline: prediction, misprediction
penalty, recovery correctness, checkpoint pressure."""

import dataclasses


from repro.core.machine import Machine, simulate
from repro.workloads import TraceBuilder


def _with_branch(taken, n_after=40):
    b = TraceBuilder()
    b.alu(dest=1, value=3)
    b.branch(taken=taken, cond=1, target=0x400800)
    for i in range(n_after):
        b.alu(dest=2 + (i % 6), value=i, srcs=[1])
    return b.build()


class TestPrediction:
    def test_not_taken_branch_costs_nothing(self, cfg4):
        """Cold 2-bit counters predict weakly-not-taken, so an untaken
        branch is correct from the start."""
        stats = simulate(cfg4, _with_branch(taken=False))
        assert stats.mispredicts == 0

    def test_cold_taken_branch_mispredicts(self, cfg4):
        stats = simulate(cfg4, _with_branch(taken=True))
        assert stats.mispredicts == 1

    def test_branches_counted_at_commit(self, cfg4):
        stats = simulate(cfg4, _with_branch(taken=False))
        assert stats.branches == 1


class TestMispredictPenalty:
    def test_at_least_11_cycles(self, cfg4):
        taken = simulate(cfg4, _with_branch(taken=True))
        untaken = simulate(cfg4, _with_branch(taken=False))
        assert taken.cycles >= untaken.cycles + 11

    def test_squashes_wrong_path_standins(self, cfg4):
        stats = simulate(cfg4, _with_branch(taken=True))
        assert stats.squashed > 0

    def test_everything_still_commits(self, cfg4):
        stats = simulate(cfg4, _with_branch(taken=True, n_after=60))
        assert stats.committed == 62


class TestRecoveryCorrectness:
    def test_values_across_recovery(self, cfg4):
        """Producers before the branch, consumers after: recovery must
        restore the map so refetched consumers read the right values.
        (The machine raises SimulationError otherwise.)"""
        b = TraceBuilder()
        for i in range(6):
            b.alu(dest=1 + i, value=100 + i)
        b.branch(taken=True, cond=1, target=0x400900)
        for i in range(30):
            b.alu(dest=8 + (i % 4), value=i, srcs=[1 + (i % 6)])
        stats = simulate(cfg4, b.build())
        assert stats.committed == 37

    def test_nested_mispredictions(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=1)
        for round_ in range(6):
            b.branch(taken=True, cond=1, target=0x400800 + round_ * 0x40)
            for i in range(5):
                b.alu(dest=2 + i % 4, value=round_ * 10 + i, srcs=[1])
        stats = simulate(cfg4, b.build())
        assert stats.committed == len(b.ops)
        assert stats.mispredicts >= 2

    def test_producer_in_flight_across_recovery(self, cfg4):
        """A slow producer older than the branch is still executing when
        the branch recovers; refetched consumers must wait for it."""
        b = TraceBuilder()
        b.alu(dest=1, value=0x4000_0000)
        b.load(dest=2, addr=0x4000_0000, value=44, base=1)  # slow miss
        b.branch(taken=True, cond=1, target=0x400A00)
        for i in range(10):
            b.alu(dest=3 + (i % 3), value=50 + i, srcs=[2])
        stats = simulate(cfg4, b.build())
        assert stats.committed == 13


class TestCheckpointPressure:
    def test_few_checkpoints_still_correct(self, cfg4):
        cfg = dataclasses.replace(cfg4, max_checkpoints=2)
        b = TraceBuilder()
        b.alu(dest=1, value=1)
        for i in range(40):
            b.branch(taken=False, cond=1)
            b.alu(dest=2, value=i, srcs=[1])
        stats = simulate(cfg, b.build())
        assert stats.committed == len(b.ops)
        assert stats.rename_stall_other > 0

    def test_checkpoints_released_at_resolve(self, cfg4):
        m = Machine(cfg4)
        b = TraceBuilder()
        b.alu(dest=1, value=1)
        for i in range(30):
            b.branch(taken=False, cond=1)
            b.alu(dest=2, value=i, srcs=[1])
        m.run(b.build())
        assert len(m.ckpts) == 0
