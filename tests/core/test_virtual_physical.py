"""Virtual-physical (delayed register allocation) mode tests.

The paper's Section 6 names the interaction of PRI with delayed
allocation through virtual-physical registers [7,17] as future work;
``MachineConfig.virtual_physical`` implements it: rename binds
destinations to unbounded virtual tags, and a physical register is
claimed only at issue.
"""

import dataclasses

import pytest

from repro.core.machine import Machine, simulate
from repro.workloads import TraceBuilder

_COLD = 0x4000_0000


def _vp(cfg):
    return cfg.with_virtual_physical()


def _tight(cfg, regs=36):
    return dataclasses.replace(cfg, int_phys_regs=regs, fp_phys_regs=regs)


class TestBasics:
    def test_runs_simple_programs(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=5)
        b.alu(dest=2, value=6, srcs=[1])
        b.alu(dest=3, value=11, srcs=[1, 2])
        stats = simulate(_vp(cfg4), b.build())
        assert stats.committed == 3

    def test_rejects_early_release_combo(self, cfg4):
        with pytest.raises(ValueError):
            Machine(_vp(cfg4).with_early_release())

    def test_real_workload_runs_clean(self, cfg4_real, gzip_trace):
        m = Machine(_vp(cfg4_real))
        stats = m.run(gzip_trace)
        assert stats.committed == len(gzip_trace)
        m.assert_invariants()

    def test_with_branches_and_recovery(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=1)
        for i in range(5):
            b.branch(taken=True, cond=1, target=0x400800 + i * 0x40)
            for j in range(6):
                b.alu(dest=2 + j % 4, value=i * 10 + j, srcs=[1])
        stats = simulate(_vp(cfg4), b.build())
        assert stats.committed == len(b.ops)


class TestDelayedAllocation:
    def test_alloc_to_write_phase_shrinks(self, cfg4_real, gzip_trace):
        base = simulate(cfg4_real, gzip_trace)
        vp = simulate(_vp(cfg4_real), gzip_trace)
        assert (vp.lifetime("int").avg_alloc_to_write
                < base.lifetime("int").avg_alloc_to_write)

    def test_no_rename_stalls_for_registers(self, cfg4_real, gzip_trace):
        vp = simulate(_tight(_vp(cfg4_real), regs=40), gzip_trace)
        assert vp.rename_stall_regs == 0

    def test_alloc_stalls_move_to_issue(self, cfg4_real, gzip_trace):
        vp = simulate(_tight(_vp(cfg4_real), regs=40), gzip_trace)
        assert vp.vp_alloc_stalls > 0

    def test_helps_when_register_starved(self, cfg4_real, gzip_trace):
        tight_base = simulate(_tight(cfg4_real, regs=40), gzip_trace)
        tight_vp = simulate(_tight(_vp(cfg4_real), regs=40), gzip_trace)
        assert tight_vp.ipc > tight_base.ipc


class TestDeadlockFreedom:
    """The reserve-for-oldest rule must keep the machine live even with
    barely more registers than architected state."""

    @pytest.mark.parametrize("regs", [33, 34, 36])
    def test_minimal_register_files(self, cfg4, regs):
        b = TraceBuilder()
        for i in range(200):
            b.alu(dest=1 + (i % 8), value=0x1000_0000 + i,
                  srcs=[1 + ((i + 3) % 8)])
        cfg = dataclasses.replace(_vp(cfg4), int_phys_regs=regs)
        stats = simulate(cfg, b.build())
        assert stats.committed == 200

    def test_long_miss_under_pressure(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=_COLD)
        b.load(dest=2, addr=_COLD, value=7, base=1)
        for i in range(150):
            b.alu(dest=3 + (i % 5), value=0x2000_0000 + i)
        cfg = dataclasses.replace(_vp(cfg4), int_phys_regs=34)
        stats = simulate(cfg, b.build())
        assert stats.committed == 152


class TestWithPri:
    def test_inlined_registers_free_unconditionally(self, cfg4):
        b = TraceBuilder()
        b.alu(dest=1, value=5)
        b.nops(40, dest=2, value=0x12345678)
        stats = simulate(_vp(cfg4).with_pri(), b.build())
        assert stats.inlined >= 1
        assert stats.pri_early_frees >= 1

    def test_combination_beats_pri_alone_when_starved(self, cfg4_real, gzip_trace):
        pri = simulate(_tight(cfg4_real, regs=40).with_pri(), gzip_trace)
        both = simulate(_tight(_vp(cfg4_real), regs=40).with_pri(), gzip_trace)
        assert both.ipc >= pri.ipc * 0.98

    def test_consumer_reads_through_vtag_after_free(self, cfg4):
        """A delayed consumer still reads correctly after PRI freed the
        producer's physical register — the vtag table holds the value."""
        b = TraceBuilder()
        b.alu(dest=1, value=_COLD)
        b.load(dest=2, addr=_COLD, value=0x999999999, base=1)  # slow
        b.alu(dest=3, value=5)  # narrow; freed at retire
        b.alu(dest=4, value=0x99999999E, srcs=[2, 3])  # delayed consumer
        for i in range(60):
            b.alu(dest=5 + (i % 3), value=0x3000_0000 + i)
        cfg = dataclasses.replace(_vp(cfg4).with_pri(), int_phys_regs=40)
        stats = simulate(cfg, b.build())
        assert stats.committed == 64
        assert stats.war_replays == 0


class TestExhaustionBackstop:
    """Register stealing: the reserve-for-oldest rule guarantees the
    oldest unissued writer a register *once*, but not that its commit
    returns one (PRI may have inline-freed the previous mapping long
    ago, and younger writers consumed the free).  Found by fuzzing:
    without the backstop these runs deadlock with the ROB head parked
    on an empty free list."""

    def test_pri_vp_tight_prf_stays_live(self, cfg4_real, gzip_trace):
        cfg = dataclasses.replace(
            _vp(cfg4_real).with_pri(), int_phys_regs=34, fp_phys_regs=34
        )
        stats = simulate(cfg, gzip_trace)
        assert stats.committed == len(gzip_trace)
        assert stats.vp_steals > 0, "exhaustion never hit: weak test"

    def test_steals_are_value_safe(self, cfg4_real, gzip_trace):
        """The stolen register's value lives on in the vtag table: the
        oracle and the auditor both stay green through every steal."""
        cfg = dataclasses.replace(
            _vp(cfg4_real).with_pri(), int_phys_regs=34, fp_phys_regs=34
        ).with_oracle(interval=64).with_audit(interval=256)
        stats = simulate(cfg, gzip_trace)
        assert stats.committed == len(gzip_trace)
        assert stats.vp_steals > 0
        assert stats.oracle_commits == len(gzip_trace)

    def test_fp_heavy_workload_stays_live(self, cfg4_real, swim_trace):
        cfg = dataclasses.replace(
            _vp(cfg4_real).with_pri(), int_phys_regs=36, fp_phys_regs=36
        )
        stats = simulate(cfg, swim_trace)
        assert stats.committed == len(swim_trace)
        assert stats.vp_steals > 0

    def test_steals_stay_rare(self, cfg4_real, gzip_trace):
        """The backstop is a last resort, not the allocator: even under
        pressure it fires orders of magnitude less often than commits."""
        cfg = dataclasses.replace(
            _vp(cfg4_real).with_pri(), int_phys_regs=34, fp_phys_regs=34
        )
        stats = simulate(cfg, gzip_trace)
        assert 0 < stats.vp_steals < stats.committed / 10
