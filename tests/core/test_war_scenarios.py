"""The paper's Figure 6 scenario: a WAR hazard between PRI's early free
and a delayed consumer, under each recovery policy.

The scenario: an `add` has two inputs — one produced by a load that
misses to memory (so the add waits ~160 cycles in the scheduler), the
other a narrow value that gets inlined and whose register becomes a
freeing candidate while the add still holds a stale pointer to it.
"""

import dataclasses

import pytest

from repro.config import CheckpointPolicy, WarPolicy
from repro.core.machine import Machine, simulate
from repro.workloads import TraceBuilder

_COLD = 0x4000_0000


def _figure6_trace(churn=80):
    b = TraceBuilder()
    b.alu(dest=1, value=_COLD)
    b.load(dest=2, addr=_COLD, value=0x123456789, base=1)  # long miss
    b.alu(dest=3, value=5)  # narrow: inlined at retire, register freed
    b.alu(dest=5, value=0x123456789 + 5, srcs=[2, 3])  # the delayed add
    # Unrelated churn that wants to reallocate the freed register.
    for i in range(churn):
        b.alu(dest=6 + (i % 4), value=0x4000_0000 + i)
    return b.build("figure6")


def _tight(cfg):
    """Few spare registers, so freed registers are reallocated quickly."""
    return dataclasses.replace(cfg, int_phys_regs=40)


class TestRefcountPolicy:
    def test_no_violation_and_correct_value(self, cfg4):
        """The consumer's reference pins the register until it reads; the
        machine's dataflow checker would raise on any corruption."""
        cfg = _tight(cfg4).with_pri(WarPolicy.REFCOUNT)
        stats = simulate(cfg, _figure6_trace())
        assert stats.committed == 84
        assert stats.war_replays == 0

    def test_free_is_deferred_not_lost(self, cfg4):
        cfg = _tight(cfg4).with_pri(WarPolicy.REFCOUNT)
        stats = simulate(cfg, _figure6_trace())
        assert stats.pri_frees_deferred >= 1
        assert stats.pri_early_frees >= 1  # freed once the add reads


class TestIdealPolicy:
    def test_payload_patched_and_freed_immediately(self, cfg4):
        cfg = _tight(cfg4).with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY)
        stats = simulate(cfg, _figure6_trace())
        assert stats.committed == 84
        assert stats.pri_early_frees >= 1
        assert stats.war_replays == 0

    def test_ideal_at_least_as_fast_as_refcount(self, cfg4):
        trace = _figure6_trace()
        ref = simulate(_tight(cfg4).with_pri(WarPolicy.REFCOUNT), trace)
        ideal = simulate(
            _tight(cfg4).with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY), trace
        )
        assert ideal.cycles <= ref.cycles


class TestReplayPolicy:
    def test_violation_detected_and_replayed(self, cfg4):
        """With REPLAY, the register frees immediately; the delayed add
        finds it reallocated and must replay through the map.  The run
        must still produce correct dataflow (no SimulationError)."""
        cfg = _tight(cfg4).with_pri(WarPolicy.REPLAY, CheckpointPolicy.LAZY)
        stats = simulate(cfg, _figure6_trace())
        assert stats.committed == 84
        assert stats.war_replays >= 1

    def test_replay_costs_cycles(self, cfg4):
        trace = _figure6_trace()
        replay = simulate(
            _tight(cfg4).with_pri(WarPolicy.REPLAY, CheckpointPolicy.LAZY), trace
        )
        ideal = simulate(
            _tight(cfg4).with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY), trace
        )
        assert replay.cycles >= ideal.cycles


class TestInvariantsAcrossPolicies:
    @pytest.mark.parametrize("war", [WarPolicy.REFCOUNT, WarPolicy.IDEAL,
                                     WarPolicy.REPLAY])
    @pytest.mark.parametrize("ckpt", [CheckpointPolicy.CKPTCOUNT,
                                      CheckpointPolicy.LAZY])
    def test_end_state_clean(self, cfg4, war, ckpt):
        cfg = _tight(cfg4).with_pri(war, ckpt)
        m = Machine(cfg)
        m.run(_figure6_trace())
        m.assert_invariants()
        if war != WarPolicy.REPLAY:
            for rc in m.refcounts.values():
                rc.assert_clean()
