"""Machine configuration tests (Table 1 fidelity + the builder API)."""

import dataclasses

import pytest

from repro.config import (
    EFFECTIVELY_INFINITE_REGS,
    PRF_SWEEP_SIZES,
    CheckpointPolicy,
    WarPolicy,
    eight_wide,
    four_wide,
)


class TestTable1Fidelity:
    def test_four_wide(self):
        cfg = four_wide()
        assert cfg.width == 4
        assert cfg.rob_entries == 512
        assert cfg.lsq_entries == 256
        assert cfg.scheduler_entries == 32
        assert cfg.int_phys_regs == 64 and cfg.fp_phys_regs == 64
        assert cfg.pri.int_width_bits == 7
        assert not cfg.pri.enabled and not cfg.early_release

    def test_eight_wide(self):
        cfg = eight_wide()
        assert cfg.width == 8
        assert cfg.scheduler_entries == 512  # matches the ROB: "infinite"
        assert cfg.pri.int_width_bits == 10

    def test_branch_config(self):
        b = four_wide().branch
        assert b.bimodal_entries == 4096
        assert b.gshare_entries == 4096
        assert b.selector_entries == 4096
        assert b.btb_entries == 1024 and b.btb_assoc == 4
        assert b.ras_entries == 16
        assert b.min_mispredict_penalty == 11

    def test_prf_sweep_matches_figure9(self):
        assert PRF_SWEEP_SIZES == (40, 48, 56, 64, 72, 80, 96)


class TestBuilders:
    def test_with_pri_defaults(self):
        cfg = four_wide().with_pri()
        assert cfg.pri.enabled
        assert cfg.pri.war_policy == WarPolicy.REFCOUNT
        assert cfg.pri.checkpoint_policy == CheckpointPolicy.CKPTCOUNT
        # The original is untouched (frozen dataclasses).
        assert not four_wide().pri.enabled

    def test_with_pri_overrides(self):
        cfg = four_wide().with_pri(
            WarPolicy.IDEAL, CheckpointPolicy.LAZY, int_width_bits=12
        )
        assert cfg.pri.war_policy == WarPolicy.IDEAL
        assert cfg.pri.checkpoint_policy == CheckpointPolicy.LAZY
        assert cfg.pri.int_width_bits == 12

    def test_with_early_release(self):
        cfg = four_wide().with_early_release()
        assert cfg.early_release
        assert not cfg.pri.enabled

    def test_combined(self):
        cfg = four_wide().with_pri().with_early_release()
        assert cfg.pri.enabled and cfg.early_release

    def test_with_phys_regs(self):
        cfg = four_wide().with_phys_regs(96)
        assert cfg.int_phys_regs == 96 and cfg.fp_phys_regs == 96
        cfg = four_wide().with_phys_regs(80, 48)
        assert cfg.int_phys_regs == 80 and cfg.fp_phys_regs == 48

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            four_wide().width = 16

    def test_infinite_is_big_enough(self):
        # 512-entry ROB can hold at most 512 in-flight destinations plus
        # the architected state; "infinite" must exceed that.
        assert EFFECTIVELY_INFINITE_REGS > 512 + 32
