"""Lifetime breakdown extraction tests."""


from repro.analysis.lifetime import LifetimeBreakdown, breakdown_from_stats
from repro.core.stats import SimStats


def test_breakdown_math():
    b = LifetimeBreakdown("x", 2.0, 3.0, 5.0)
    assert b.total == 10.0
    assert "x" in str(b) and "10.0" in str(b)


def test_from_stats():
    stats = SimStats()
    stats.lifetimes["int"].record(alloc=0, write=4, last_read=10, release=30)
    b = breakdown_from_stats(stats, "bench")
    assert b.alloc_to_write == 4
    assert b.write_to_last_read == 6
    assert b.last_read_to_release == 20
    assert b.total == 30


def test_reg_class_selectable():
    stats = SimStats()
    stats.lifetimes["fp"].record(alloc=0, write=1, last_read=2, release=3)
    b = breakdown_from_stats(stats, "bench", reg_class="fp")
    assert b.total == 3
    assert breakdown_from_stats(stats, "bench", reg_class="int").total == 0
