"""Operand significance analysis tests (Figure 2 machinery)."""

import pytest

from repro.analysis.significance import (
    fp_exponent_cdf,
    fp_significand_cdf,
    int_width_cdf,
    summarize_trace,
)
from repro.isa.values import MAX_UINT64, pack_fp
from repro.workloads import TraceBuilder, generate_trace


def _trace_with_values(values):
    b = TraceBuilder()
    for v in values:
        b.alu(dest=1, value=v)
    return b.build()


class TestIntCdf:
    def test_known_distribution(self):
        # 2 one-bit values (0, -1), 1 two-bit (1), 1 eight-bit (100).
        cdf = int_width_cdf(_trace_with_values([0, -1, 1, 100]))
        assert cdf[0] == 0.0
        assert cdf[1] == pytest.approx(0.5)
        assert cdf[2] == pytest.approx(0.75)
        assert cdf[7] == pytest.approx(0.75)
        assert cdf[8] == 1.0
        assert cdf[64] == 1.0

    def test_counts_sources_too(self):
        b = TraceBuilder()
        b.alu(dest=1, value=0)          # 1-bit result
        b.alu(dest=2, value=200, srcs=[1])  # reads the 1-bit value
        cdf = int_width_cdf(b.build())
        # Operands: result 0 (1b), source 0 (1b), result 200 (9b).
        assert cdf[1] == pytest.approx(2 / 3)

    def test_monotone(self, gzip_trace):
        cdf = int_width_cdf(gzip_trace)
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))
        assert cdf[64] == pytest.approx(1.0)


class TestFpCdfs:
    def test_zero_pattern_counts_as_zero_bits(self):
        b = TraceBuilder()
        b.fp(dest=1, value=0)
        b.fp(dest=2, value=MAX_UINT64)
        b.fp(dest=3, value=pack_fp(1.5))
        exp = fp_exponent_cdf(b.build())
        sig = fp_significand_cdf(b.build())
        assert exp[0] == pytest.approx(2 / 3)
        assert sig[0] == pytest.approx(2 / 3)
        assert sig[1] == pytest.approx(1.0)  # 1.5 has 1 significand bit

    def test_fp_benchmark_profile_shows_up(self, swim_trace):
        exp = fp_exponent_cdf(swim_trace)
        assert 0.2 < exp[0] < 1.0


class TestSummary:
    def test_matches_profile_targets(self):
        from repro.workloads import get_profile

        trace = generate_trace("gzip", 8000, seed=2, warmup=0)
        summary = summarize_trace(trace)
        target = get_profile("gzip").int_widths.fraction_at_most(10)
        assert summary.int_at_10_bits == pytest.approx(target, abs=0.05)
        assert summary.int_at_7_bits < summary.int_at_10_bits

    def test_fp_fields_populated_for_fp_bench(self, swim_trace):
        summary = summarize_trace(swim_trace)
        assert summary.fp_exp_zero_bits > 0
        assert summary.fp_sig_zero_bits > 0

    def test_str_is_readable(self, gzip_trace):
        assert "gzip" in str(summarize_trace(gzip_trace))

    def test_paper_range_across_suite(self):
        """Figure 2 headline: roughly half of integer operands fit in 10
        bits, spanning about 23%-82% across SPECint."""
        from repro.workloads import SPEC_INT

        fractions = []
        for profile in SPEC_INT:
            trace = generate_trace(profile.name, 2500, seed=3, warmup=0)
            fractions.append(summarize_trace(trace).int_at_10_bits)
        assert 0.15 <= min(fractions) <= 0.35
        assert 0.70 <= max(fractions) <= 0.90
        assert 0.4 <= sum(fractions) / len(fractions) <= 0.65
