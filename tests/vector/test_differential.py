"""Differential suite: every lane of a batched column must be
bit-identical to the scalar backend run of the same (config, trace).

This is the vector backend's correctness contract — ``SimStats`` deep
equality (``to_dict()``), not just headline IPC — exercised across the
reclamation schemes, register-exhaustion sizes (where the engine must
fork), a mispredict-heavy trace, the checkers, and fuzz-sampled machine
shapes from :mod:`repro.oracle.fuzz`.
"""

import dataclasses

import pytest

from repro.config import four_wide
from repro.core.machine import Machine, simulate
from repro.experiments.runner import SCHEMES
from repro.oracle.fuzz import sample_spec
from repro.vector import Lane, run_column
from repro.workloads import generate_trace

#: Sweep sizes per class: 40/48 exhaust the PRF on these traces (the
#: engine must fork mid-run), 96 stays comfortably unshared-stall-free.
SIZES = (40, 48, 64, 96)

#: One scheme per reclamation family (the full registry runs in the
#: fuzz-shape test below; these three get the size sweep).
FAMILIES = ("base", "ER", "PRI-refcount+ckptcount")


@pytest.fixture(scope="module")
def gzip_small():
    return generate_trace("gzip", 400, seed=5, warmup=800)


@pytest.fixture(scope="module")
def gcc_small():
    """gcc is the mispredict-heavy profile: squash/recovery interleaves
    with capacity stalls, the hardest ordering for the fork point."""
    return generate_trace("gcc", 400, seed=11, warmup=800)


def _sweep_lanes(scheme, trace, sizes=SIZES):
    cfg = SCHEMES[scheme](four_wide())
    return [Lane(key=str(size), config=cfg.with_phys_regs(size), trace=trace)
            for size in sizes]


def _assert_lanes_match_scalar(lanes, outcome, max_cycles=None):
    for lane in lanes:
        result = outcome.results[lane.key]
        assert result.error is None, (lane.key, result.error)
        want = simulate(lane.config, lane.trace, max_cycles=max_cycles)
        assert result.stats.to_dict() == want.to_dict(), lane.key


# ======================================================= the size sweep


@pytest.mark.parametrize("scheme", FAMILIES)
def test_size_sweep_bit_identical(scheme, gzip_small):
    lanes = _sweep_lanes(scheme, gzip_small)
    outcome = run_column(lanes)
    # One shape, componentwise-ordered sizes: a single coherence group
    # that must fork at the exhaustion sizes, or the test proves nothing.
    assert outcome.groups == 1
    assert outcome.forks >= 1
    _assert_lanes_match_scalar(lanes, outcome)


@pytest.mark.parametrize("scheme", FAMILIES)
def test_mispredict_heavy_sweep_bit_identical(scheme, gcc_small):
    lanes = _sweep_lanes(scheme, gcc_small)
    outcome = run_column(lanes)
    _assert_lanes_match_scalar(lanes, outcome)


def test_exhaustion_lane_actually_stalled(gzip_small):
    """Guard the premise: the smallest sweep size really exhausts the
    PRF (otherwise the fork path went untested above)."""
    cfg = four_wide().with_phys_regs(SIZES[0])
    stats = Machine(cfg).run(gzip_small)
    assert stats.rename_stall_regs > 0


def test_sharing_actually_happened(gzip_small):
    """The batch must simulate fewer machine-cycles than the scalar
    sweep pays — that gap is the whole point of the backend."""
    lanes = _sweep_lanes("base", gzip_small)
    outcome = run_column(lanes)
    scalar_total = sum(
        simulate(lane.config, lane.trace).cycles for lane in lanes
    )
    assert outcome.cycles_simulated < scalar_total


# =================================================== checkers ride along


def test_audit_enabled_column_bit_identical(gzip_small):
    """The invariant auditor reads register-file generation counters
    through a closure the fork must rebind; run it on a forking column."""
    cfg = SCHEMES["PRI-refcount+ckptcount"](four_wide()).with_audit(
        interval=64)
    lanes = [Lane(key=str(size), config=cfg.with_phys_regs(size),
                  trace=gzip_small) for size in SIZES]
    outcome = run_column(lanes)
    assert outcome.forks >= 1
    _assert_lanes_match_scalar(lanes, outcome)


def test_oracle_enabled_column_bit_identical(gzip_small):
    cfg = four_wide().with_oracle(interval=128)
    lanes = [Lane(key=str(size), config=cfg.with_phys_regs(size),
                  trace=gzip_small) for size in (48, 96)]
    outcome = run_column(lanes)
    _assert_lanes_match_scalar(lanes, outcome)


# ========================================================= error parity


def test_max_cycles_truncation_matches_scalar(gzip_small):
    """Hitting the cycle limit must leave each lane with exactly the
    stats a scalar ``simulate(..., max_cycles=N)`` returns."""
    lanes = _sweep_lanes("base", gzip_small, sizes=(48, 96))
    budget = 200
    outcome = run_column(lanes, max_cycles=budget)
    _assert_lanes_match_scalar(lanes, outcome, max_cycles=budget)
    for lane in lanes:
        assert outcome.results[lane.key].stats.committed < len(gzip_small)


def test_empty_trace_matches_scalar():
    trace = generate_trace("gzip", 0, seed=1, warmup=0)
    lanes = [Lane(key="empty", config=four_wide(), trace=trace)]
    outcome = run_column(lanes)
    want = simulate(four_wide(), trace)
    assert outcome.results["empty"].stats.to_dict() == want.to_dict()


# ============================================== full registry, one size


def test_every_scheme_bit_identical_singleton(gzip_small):
    """All registry schemes (including VP-based ones that run as
    unsharable singleton groups) through one column."""
    lanes = [Lane(key=name, config=SCHEMES[name](four_wide()),
                  trace=gzip_small) for name in sorted(SCHEMES)]
    outcome = run_column(lanes)
    _assert_lanes_match_scalar(lanes, outcome)


# ========================================================== fuzz shapes


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_sampled_shapes_bit_identical(seed):
    """Machine shapes drawn from the oracle fuzzer's generator (minus
    virtual-physical, which the planner runs as singletons anyway and
    the capacity-pair test here extends componentwise)."""
    spec = sample_spec(seed, benchmarks=("gzip", "gcc", "mesa"))
    spec = dataclasses.replace(
        spec, virtual_physical=False, length=300, warmup=600,
        oracle_interval=512, audit_interval=1024,
    )
    trace = generate_trace(spec.benchmark, spec.length,
                           seed=spec.trace_seed, warmup=spec.warmup)
    small = spec.config()
    big = dataclasses.replace(
        small, int_phys_regs=small.int_phys_regs + 32,
        fp_phys_regs=small.fp_phys_regs + 32,
    )
    lanes = [Lane(key="small", config=small, trace=trace),
             Lane(key="big", config=big, trace=trace)]
    outcome = run_column(lanes)
    assert outcome.groups == 1
    _assert_lanes_match_scalar(lanes, outcome)
