"""Column planner: coherence grouping, capacity chains, and the
numpy import gate."""

import builtins
import dataclasses
import importlib
import sys

import pytest

from repro.config import four_wide
from repro.vector import Lane, plan_groups, run_column, sharable
from repro.workloads import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace("gzip", 200, seed=3, warmup=200)


@pytest.fixture(scope="module")
def other_trace():
    return generate_trace("gcc", 200, seed=3, warmup=200)


def _cfg(int_regs, fp_regs=None, **overrides):
    return dataclasses.replace(
        four_wide(), int_phys_regs=int_regs,
        fp_phys_regs=fp_regs if fp_regs is not None else int_regs,
        **overrides,
    )


def _lane(key, cfg, trace):
    return Lane(key=key, config=cfg, trace=trace)


# ============================================================= grouping


def test_capacity_chain_forms_one_group(trace):
    lanes = [_lane(str(n), _cfg(n), trace) for n in (128, 64, 96)]
    groups = plan_groups(lanes)
    assert len(groups) == 1
    assert groups[0].caps == [(64, 64), (96, 96), (128, 128)]
    assert [[lane.key for lane in link] for link in groups[0].lanes] == [
        ["64"], ["96"], ["128"],
    ]


def test_incomparable_capacities_split(trace):
    # (48, 64) and (64, 48) dominate each other in neither class, so the
    # fork step (which must extend both classes monotonically) cannot
    # chain them.
    lanes = [_lane("a", _cfg(48, 64), trace), _lane("b", _cfg(64, 48), trace)]
    groups = plan_groups(lanes)
    assert len(groups) == 2
    assert {g.caps[0] for g in groups} == {(48, 64), (64, 48)}


def test_duplicate_capacities_share_one_link(trace):
    lanes = [_lane("a", _cfg(64), trace), _lane("b", _cfg(64), trace),
             _lane("c", _cfg(96), trace)]
    groups = plan_groups(lanes)
    assert len(groups) == 1
    assert groups[0].caps == [(64, 64), (96, 96)]
    assert sorted(lane.key for lane in groups[0].lanes[0]) == ["a", "b"]


def test_different_traces_never_group(trace, other_trace):
    lanes = [_lane("a", _cfg(64), trace), _lane("b", _cfg(96), other_trace)]
    assert len(plan_groups(lanes)) == 2


def test_different_shapes_never_group(trace):
    # Same capacities, different scheme knobs: not coherent.
    lanes = [_lane("a", _cfg(64), trace),
             _lane("b", _cfg(64, early_release=True), trace)]
    assert len(plan_groups(lanes)) == 2


def test_virtual_physical_is_unsharable_singleton(trace):
    vp = _cfg(64, virtual_physical=True)
    assert not sharable(vp)
    # Even two *identical* VP lanes stay apart: capacity monotonicity
    # does not hold under issue-time allocation, so nothing is shared.
    lanes = [_lane("a", vp, trace), _lane("b", vp, trace)]
    groups = plan_groups(lanes)
    assert len(groups) == 2
    assert all(len(g.caps) == 1 for g in groups)


def test_fifo_alloc_policy_is_unsharable(trace):
    fifo = _cfg(64, alloc_policy="fifo")
    assert not sharable(fifo)


def test_every_lane_lands_exactly_once(trace, other_trace):
    lanes = [
        _lane("a", _cfg(64), trace), _lane("b", _cfg(96), trace),
        _lane("c", _cfg(48, 64), trace), _lane("d", _cfg(64), other_trace),
        _lane("e", _cfg(64, virtual_physical=True), trace),
    ]
    groups = plan_groups(lanes)
    seen = [lane.key for g in groups for link in g.lanes for lane in link]
    assert sorted(seen) == ["a", "b", "c", "d", "e"]


def test_duplicate_lane_keys_rejected(trace):
    lanes = [_lane("same", _cfg(64), trace), _lane("same", _cfg(96), trace)]
    with pytest.raises(ValueError, match="duplicate lane keys"):
        run_column(lanes)


# ========================================================== import gate


def test_missing_numpy_gives_actionable_import_error(monkeypatch):
    real_import = builtins.__import__

    def no_numpy(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("No module named 'numpy'")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numpy)
    for mod in list(sys.modules):
        if mod == "repro.vector" or mod.startswith("repro.vector."):
            monkeypatch.delitem(sys.modules, mod)
    with pytest.raises(ImportError, match=r"pip install repro\[vector\]"):
        importlib.import_module("repro.vector")
