"""run_matrix on the vector backend: parity with scalar, option
validation, per-cell journal lines, and per-cell resume."""

import pytest

from repro.core.stats import SimStats
from repro.experiments import RunSpec, SweepJournal, run_matrix
from repro.experiments.journal import cell_key
from repro.experiments.runner import CellError, lane_key

_SPEC = RunSpec(length=300, warmup=600, seed=2)
_PRI = "PRI-refcount+ckptcount"
_BENCH = ("gzip", "gcc")
#: base and inf differ only in PRF capacity, so the column planner must
#: put them on one shared machine per benchmark.
_SCHEMES = ("base", "inf", _PRI)


@pytest.fixture(scope="module")
def scalar_reference():
    return run_matrix(_BENCH, _SCHEMES, 4, _SPEC)


def _assert_identical(got, want):
    for benchmark in want:
        for scheme in want[benchmark]:
            a, b = got[benchmark][scheme], want[benchmark][scheme]
            assert isinstance(a, SimStats), (benchmark, scheme, a)
            assert a.to_dict() == b.to_dict(), (benchmark, scheme)


def test_vector_matrix_matches_scalar(scalar_reference):
    result = run_matrix(_BENCH, _SCHEMES, 4, _SPEC, backend="vector")
    _assert_identical(result, scalar_reference)


def test_lane_key_is_stable():
    assert lane_key("gzip", "base") == "gzip|base"


# ============================================================ validation


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend must be one of"):
        run_matrix(_BENCH, ("base",), 4, _SPEC, backend="turbo")


@pytest.mark.parametrize("kwargs", [
    {"jobs": 4}, {"cell_timeout": 5.0}, {"retries": 2},
])
def test_scalar_only_options_rejected_without_farm(kwargs):
    with pytest.raises(ValueError, match="scalar backend"):
        run_matrix(_BENCH, ("base",), 4, _SPEC, backend="vector", **kwargs)


def test_cell_fn_rejected_on_vector():
    with pytest.raises(ValueError, match="cell_fn"):
        run_matrix(_BENCH, ("base",), 4, _SPEC, backend="vector",
                   cell_fn=lambda *a: None)


# ========================================================= error parity


def test_watchdog_cell_error_matches_scalar_message():
    spec = RunSpec(length=300, warmup=600, seed=2, max_cycles=50)
    scalar = run_matrix(("gzip",), ("base",), 4, spec, on_error="record")
    vector = run_matrix(("gzip",), ("base",), 4, spec, on_error="record",
                        backend="vector")
    a, b = scalar["gzip"]["base"], vector["gzip"]["base"]
    assert isinstance(a, CellError) and isinstance(b, CellError)
    assert (a.kind, a.error_type, a.message) == (b.kind, b.error_type,
                                                 b.message)


# ========================================= journal: per-cell, resumable


def test_vector_run_journals_one_line_per_cell(tmp_path, scalar_reference):
    """A batched column must land as individual cell records — the
    journal's unit of resume — not one blob per column."""
    path = str(tmp_path / "journal.json")
    run_matrix(_BENCH, _SCHEMES, 4, _SPEC, backend="vector", journal=path)
    back = SweepJournal(path)
    assert len(back) == len(_BENCH) * len(_SCHEMES)
    for benchmark in _BENCH:
        for scheme in _SCHEMES:
            saved = back.get(cell_key(benchmark, scheme, 4, _SPEC))
            assert isinstance(saved, SimStats)
            want = scalar_reference[benchmark][scheme]
            assert saved.to_dict() == want.to_dict()


def test_vector_run_resumes_per_cell(tmp_path):
    """A journaled cell is honored by a later vector run: only the
    missing cells join the column."""
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    sentinel = SimStats()
    sentinel.committed = 123456  # impossible for a real 300-instr cell
    journal.record_ok(cell_key("gzip", "base", 4, _SPEC), sentinel)
    result = run_matrix(_BENCH, _SCHEMES, 4, _SPEC, backend="vector",
                        journal=journal)
    assert result["gzip"]["base"].committed == 123456
    # The rest were simulated and journaled as usual.
    back = SweepJournal(path)
    assert len(back) == len(_BENCH) * len(_SCHEMES)
    assert isinstance(result["gcc"][_PRI], SimStats)
    assert result["gcc"][_PRI].committed == _SPEC.length
