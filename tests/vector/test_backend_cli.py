"""--backend vector on both CLIs (python -m repro / repro.experiments)."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main

pytest.importorskip("numpy", reason="vector backend needs numpy")


def test_regs_sweep_prints_column_table(capsys):
    code = repro_main(["gzip", "--length", "200", "--warmup", "400",
                       "--backend", "vector", "--regs", "64,96,128"])
    assert code == 0
    out = capsys.readouterr().out
    assert "coherence group(s)" in out
    for size in ("64", "96", "128"):
        assert size in out
    assert "machine-cycles" in out


def test_vector_matches_scalar_headline(capsys):
    args = ["gzip", "--length", "200", "--warmup", "400", "--regs", "96"]
    assert repro_main(args) == 0
    scalar_out = capsys.readouterr().out
    scalar_ipc = next(line for line in scalar_out.splitlines()
                      if "ipc=" in line)
    ipc = scalar_ipc.split("ipc=")[1].split()[0]
    assert repro_main(args + ["--backend", "vector"]) == 0
    vector_out = capsys.readouterr().out
    assert ipc in vector_out


def test_multiple_regs_require_vector():
    with pytest.raises(SystemExit):
        repro_main(["gzip", "--regs", "64,96"])


def test_bad_regs_list_rejected():
    with pytest.raises(SystemExit):
        repro_main(["gzip", "--regs", "64,notanint"])


def test_experiments_figure1_vector_matches_scalar(tmp_path, capsys):
    common = ["--figure", "1", "--length", "120", "--warmup", "300",
              "--width", "4"]
    assert experiments_main(common) == 0
    scalar_out = capsys.readouterr().out
    assert experiments_main(common + ["--backend", "vector"]) == 0
    vector_out = capsys.readouterr().out
    # Identical rendered figure — the strongest cheap parity check.
    def strip(text):
        return [line for line in text.splitlines()
                if not line.startswith("[figure")]

    assert strip(vector_out) == strip(scalar_out)


def test_experiments_vector_rejects_scalar_only_flags():
    with pytest.raises(SystemExit):
        experiments_main(["--figure", "1", "--length", "120",
                          "--warmup", "300", "--backend", "vector",
                          "--jobs", "4"])
