"""Reference-count table tests."""

import pytest

from repro.rename.refcount import RefCountTable


@pytest.fixture
def rc():
    return RefCountTable(8)


class TestConsumers:
    def test_add_drop(self, rc):
        rc.add_consumer(3)
        rc.add_consumer(3)
        assert rc.consumers(3) == 2
        rc.drop_consumer(3)
        assert rc.consumers(3) == 1

    def test_underflow_raises(self, rc):
        with pytest.raises(RuntimeError):
            rc.drop_consumer(0)


class TestCheckpoints:
    def test_resolve_scoped(self, rc):
        rc.add_checkpoint_ref(2)
        assert rc.checkpoint_refs(2) == 1
        rc.drop_checkpoint_ref(2)
        assert rc.checkpoint_refs(2) == 0
        with pytest.raises(RuntimeError):
            rc.drop_checkpoint_ref(2)

    def test_commit_scoped_er(self, rc):
        rc.add_er_checkpoint_ref(2)
        assert rc.er_checkpoint_refs(2) == 1
        rc.drop_er_checkpoint_ref(2)
        with pytest.raises(RuntimeError):
            rc.drop_er_checkpoint_ref(2)

    def test_scopes_independent(self, rc):
        rc.add_checkpoint_ref(1)
        rc.add_er_checkpoint_ref(1)
        rc.drop_checkpoint_ref(1)
        assert rc.checkpoint_refs(1) == 0
        assert rc.er_checkpoint_refs(1) == 1


class TestQueries:
    def test_pinned(self, rc):
        assert not rc.pinned(4)
        rc.add_consumer(4)
        assert rc.pinned(4)
        rc.drop_consumer(4)
        rc.add_checkpoint_ref(4)
        assert rc.pinned(4)
        assert not rc.pinned(4, include_checkpoints=False)

    def test_assert_clean(self, rc):
        rc.assert_clean()
        rc.add_consumer(1)
        with pytest.raises(AssertionError):
            rc.assert_clean()
        rc.drop_consumer(1)
        rc.add_er_checkpoint_ref(2)
        with pytest.raises(AssertionError):
            rc.assert_clean()
