"""Free list tests, especially duplicate-deallocation tolerance
(Section 3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rename.free_list import FreeList


class TestAllocation:
    def test_fifo_order(self):
        fl = FreeList([3, 1, 2])
        assert fl.allocate() == 3
        assert fl.allocate() == 1
        assert fl.allocate() == 2
        assert fl.allocate() is None

    def test_len_and_empty(self):
        fl = FreeList(range(2))
        assert len(fl) == 2 and not fl.empty
        fl.allocate()
        fl.allocate()
        assert fl.empty

    def test_membership(self):
        fl = FreeList([5])
        assert 5 in fl
        fl.allocate()
        assert 5 not in fl

    def test_duplicate_initial_rejected(self):
        with pytest.raises(ValueError):
            FreeList([1, 1])


class TestDuplicateDeallocation:
    def test_release_then_duplicate(self):
        fl = FreeList([0])
        preg = fl.allocate()
        assert fl.release(preg) is True
        assert fl.release(preg) is False  # the PRI duplicate-free case
        assert fl.duplicate_releases == 1
        assert len(fl) == 1  # present once, not twice

    def test_release_while_free(self):
        fl = FreeList([0, 1])
        assert fl.release(0) is False  # never allocated: already free
        assert fl.duplicate_releases == 1

    @given(st.lists(st.sampled_from(["alloc", "release0", "release1"]),
                    max_size=60))
    def test_never_contains_duplicates(self, script):
        """Whatever sequence of operations runs, each register appears in
        the free list at most once."""
        fl = FreeList([0, 1])
        for action in script:
            if action == "alloc":
                fl.allocate()
            else:
                fl.release(int(action[-1]))
            regs = list(fl._queue)
            assert len(regs) == len(set(regs))
            assert set(regs) == fl._free
