"""Checkpoint manager tests: dual-scope references, recovery, lazy
patching."""


from repro.isa.opcodes import RegClass
from repro.rename.checkpoints import CheckpointManager
from repro.rename.map_table import EntryMode, RenameMapTable
from repro.rename.refcount import RefCountTable


def _manager(capacity=4, track_er=True):
    maps = {
        RegClass.INT: RenameMapTable(4, 7),
        RegClass.FP: RenameMapTable(4, 1, fp_mode=True),
    }
    refcounts = {
        RegClass.INT: RefCountTable(16),
        RegClass.FP: RefCountTable(16),
    }
    mgr = CheckpointManager(capacity, maps, refcounts, track_er_refs=track_er)
    return mgr, maps, refcounts


class TestTake:
    def test_take_counts_pointer_refs_in_both_scopes(self):
        mgr, maps, rc = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        maps[RegClass.INT].set_immediate(1, 3)  # immediates take no refs
        mgr.take(1, [], 0)
        assert rc[RegClass.INT].checkpoint_refs(5) == 1
        assert rc[RegClass.INT].er_checkpoint_refs(5) == 1

    def test_capacity(self):
        mgr, maps, _ = _manager(capacity=2)
        assert mgr.take(1, [], 0) is not None
        assert mgr.take(2, [], 0) is not None
        assert mgr.full
        assert mgr.take(3, [], 0) is None

    def test_er_refs_not_tracked_when_disabled(self):
        mgr, maps, rc = _manager(track_er=False)
        maps[RegClass.INT].set_pointer(0, 5)
        mgr.take(1, [], 0)
        assert rc[RegClass.INT].checkpoint_refs(5) == 1
        assert rc[RegClass.INT].er_checkpoint_refs(5) == 0


class TestReleaseScopes:
    def test_release_drops_only_resolve_refs(self):
        mgr, maps, rc = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        ckpt = mgr.take(1, [], 0)
        mgr.release(ckpt)
        assert rc[RegClass.INT].checkpoint_refs(5) == 0
        assert rc[RegClass.INT].er_checkpoint_refs(5) == 1
        mgr.commit_retire(ckpt)
        assert rc[RegClass.INT].er_checkpoint_refs(5) == 0

    def test_release_is_idempotent(self):
        mgr, maps, rc = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        ckpt = mgr.take(1, [], 0)
        mgr.release(ckpt)
        mgr.release(ckpt)
        mgr.commit_retire(ckpt)
        mgr.commit_retire(ckpt)
        rc[RegClass.INT].assert_clean()

    def test_discard_drops_everything(self):
        mgr, maps, rc = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        ckpt = mgr.take(1, [], 0)
        mgr.discard(ckpt)
        rc[RegClass.INT].assert_clean()

    def test_on_unref_callback_fires(self):
        mgr, maps, _ = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        seen = []
        mgr.on_unref = lambda cls, preg: seen.append((cls, preg))
        ckpt = mgr.take(1, [], 0)
        mgr.release(ckpt)
        mgr.commit_retire(ckpt)
        assert seen == [(RegClass.INT, 5), (RegClass.INT, 5)]


class TestRecovery:
    def test_recover_restores_maps_and_keeps_own_checkpoint(self):
        mgr, maps, rc = _manager()
        table = maps[RegClass.INT]
        table.set_pointer(0, 5)
        ckpt = mgr.take(1, [], 0)
        table.set_pointer(0, 6)
        younger = mgr.take(2, [], 0)
        table.set_pointer(0, 7)
        mgr.recover(ckpt)
        assert table.pointer_of(0) == 5
        assert len(mgr) == 1  # `younger` discarded, `ckpt` kept
        assert rc[RegClass.INT].checkpoint_refs(6) == 0
        assert rc[RegClass.INT].er_checkpoint_refs(6) == 0
        assert rc[RegClass.INT].checkpoint_refs(5) == 1

    def test_recover_to_youngest_discards_nothing(self):
        mgr, maps, _ = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        a = mgr.take(1, [], 0)
        b = mgr.take(2, [], 0)
        mgr.recover(b)
        assert len(mgr) == 2


class TestLazyPatching:
    def test_patch_rewrites_stale_pointers(self):
        mgr, maps, rc = _manager()
        table = maps[RegClass.INT]
        table.set_pointer(0, 5)
        ckpt = mgr.take(1, [], 0)
        patched = mgr.patch_inlined(RegClass.INT, 5, 42)
        assert patched == 1
        modes, values = ckpt.snapshots[RegClass.INT]
        assert modes[0] == int(EntryMode.IMMEDIATE)
        assert values[0] == 42
        assert rc[RegClass.INT].checkpoint_refs(5) == 0
        assert rc[RegClass.INT].er_checkpoint_refs(5) == 0

    def test_patch_spans_all_checkpoints(self):
        mgr, maps, _ = _manager()
        table = maps[RegClass.INT]
        table.set_pointer(0, 5)
        table.set_pointer(1, 5)  # two logical regs, same preg snapshot? no:
        # a physical register maps from one logical register at a time in
        # practice, but the patch walks every entry regardless.
        mgr.take(1, [], 0)
        mgr.take(2, [], 0)
        assert mgr.patch_inlined(RegClass.INT, 5, 3) == 4
        assert mgr.patches_applied == 4

    def test_clear_releases_all(self):
        mgr, maps, rc = _manager()
        maps[RegClass.INT].set_pointer(0, 5)
        mgr.take(1, [], 0)
        mgr.take(2, [], 0)
        mgr.clear()
        rc[RegClass.INT].assert_clean()
        assert len(mgr) == 0
