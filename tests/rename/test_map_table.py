"""RAM map table tests, including the dual addressing mode and the
Figure 7 WAW check that guards the late (retire-stage) update."""

import pytest

from repro.isa.values import MAX_UINT64
from repro.rename.map_table import EntryMode, MapEntry, RenameMapTable


@pytest.fixture
def table():
    return RenameMapTable(num_logical=8, value_bits=7)


class TestPointerMode:
    def test_set_and_lookup(self, table):
        table.set_pointer(3, 41)
        entry = table.lookup(3)
        assert not entry.is_immediate
        assert entry.value == 41
        assert table.pointer_of(3) == 41

    def test_overwrite(self, table):
        table.set_pointer(3, 41)
        table.set_pointer(3, 42)
        assert table.pointer_of(3) == 42

    def test_pointers_listing(self, table):
        table.set_pointer(0, 10)
        table.set_pointer(1, 11)
        table.set_immediate(2, 5)
        assert sorted(table.pointers()) == [10, 11]


class TestImmediateMode:
    def test_set_immediate(self, table):
        table.set_immediate(2, -5)
        entry = table.lookup(2)
        assert entry.is_immediate
        assert entry.value == -5
        assert table.pointer_of(2) == -1

    def test_width_check(self, table):
        assert table.value_fits(63)       # 7 bits
        assert table.value_fits(-64)
        assert not table.value_fits(64)   # needs 8 bits
        assert not table.value_fits(-65)
        with pytest.raises(ValueError):
            table.set_immediate(2, 1 << 20)

    def test_fp_mode_only_all_zeros_or_ones(self):
        fp = RenameMapTable(8, value_bits=1, fp_mode=True)
        assert fp.value_fits(0)
        assert fp.value_fits(MAX_UINT64)
        assert not fp.value_fits(1)
        assert not fp.value_fits(MAX_UINT64 - 1)


class TestLateUpdateWaw:
    """Figure 7: the narrow value is copied into the entry only if the
    entry still points at the producer's physical register."""

    def test_inline_succeeds_when_still_mapped(self, table):
        table.set_pointer(4, 17)
        assert table.try_inline(4, 17, 33)
        entry = table.lookup(4)
        assert entry.is_immediate and entry.value == 33

    def test_inline_dropped_after_remap(self, table):
        table.set_pointer(4, 17)
        table.set_pointer(4, 18)  # a younger writer renamed first
        assert not table.try_inline(4, 17, 33)
        assert table.pointer_of(4) == 18

    def test_inline_dropped_when_already_immediate(self, table):
        table.set_pointer(4, 17)
        assert table.try_inline(4, 17, 33)
        # A second producer's stale update must not clobber the entry.
        assert not table.try_inline(4, 17, 99)
        assert table.lookup(4).value == 33

    def test_inline_dropped_for_wide_value(self, table):
        table.set_pointer(4, 17)
        assert not table.try_inline(4, 17, 1 << 30)
        assert table.pointer_of(4) == 17


class TestCheckpointing:
    def test_snapshot_restore_roundtrip(self, table):
        table.set_pointer(0, 10)
        table.set_immediate(1, 7)
        snap = table.snapshot()
        table.set_pointer(0, 20)
        table.set_pointer(1, 21)
        table.restore(snap)
        assert table.pointer_of(0) == 10
        assert table.lookup(1) == MapEntry(EntryMode.IMMEDIATE, 7)

    def test_snapshot_is_deep(self, table):
        table.set_pointer(0, 10)
        modes, values = table.snapshot()
        modes[0] = int(EntryMode.IMMEDIATE)
        values[0] = 99
        assert table.pointer_of(0) == 10

    def test_restore_size_check(self, table):
        with pytest.raises(ValueError):
            table.restore([MapEntry(EntryMode.POINTER, 1)])


def test_rejects_empty_table():
    with pytest.raises(ValueError):
        RenameMapTable(0, 7)
