"""CAM map table tests — including the demonstration of Section 2.1's
argument that PRI is not practical with CAM maps."""

import pytest

from repro.rename.cam_map import CamInlineError, CamMapTable


@pytest.fixture
def cam():
    return CamMapTable(num_logical=8, num_physical=16)


class TestMapping:
    def test_allocate_and_lookup(self, cam):
        cam.allocate(3, 7)
        assert cam.lookup(3) == 7

    def test_new_mapping_invalidates_old(self, cam):
        cam.allocate(3, 7)
        cam.allocate(3, 9)
        assert cam.lookup(3) == 9
        # Physical register 7 no longer answers for logical 3.
        cam.invalidate(9)
        assert cam.lookup(3) == -1

    def test_unmapped_lookup(self, cam):
        assert cam.lookup(5) == -1


class TestCheckpointValidBits:
    def test_snapshot_restores_only_valid_bits(self, cam):
        cam.allocate(1, 4)
        snap = cam.snapshot_valid_bits()
        cam.allocate(1, 5)  # invalidates entry 4, validates 5
        cam.restore_valid_bits(snap)
        assert cam.lookup(1) == 4

    def test_restore_size_check(self, cam):
        with pytest.raises(ValueError):
            cam.restore_valid_bits([True])


class TestInliningLimitation:
    """A CAM map encodes physical register numbers positionally, so a
    given inlined value has exactly one slot: two logical registers
    cannot hold the same inlined value simultaneously (Section 2.1)."""

    def test_single_copy_works(self, cam):
        assert cam.try_inline(2, value=0) == 0

    def test_same_lreg_can_refresh(self, cam):
        cam.try_inline(2, value=0)
        assert cam.try_inline(2, value=0) == 0

    def test_second_lreg_with_same_value_conflicts(self, cam):
        cam.try_inline(2, value=0)
        with pytest.raises(CamInlineError):
            cam.try_inline(3, value=0)

    def test_release_frees_the_slot(self, cam):
        cam.try_inline(2, value=0)
        cam.release_inlined(0)
        assert cam.try_inline(3, value=0) == 0

    def test_value_outside_name_space(self, cam):
        with pytest.raises(CamInlineError):
            cam.try_inline(2, value=16)
        with pytest.raises(CamInlineError):
            cam.try_inline(2, value=-1)
