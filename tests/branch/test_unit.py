"""BranchUnit facade tests, using hand-built branch micro-ops."""

from repro.branch.unit import BranchUnit
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import OpClass


def _branch(pc, taken, target, seq=0):
    return MicroOp(seq, pc, OpClass.BRANCH, taken=taken, target=target)


def _call(pc, target, seq=0):
    return MicroOp(seq, pc, OpClass.CALL, taken=True, target=target)


def _ret(pc, target, seq=0):
    return MicroOp(seq, pc, OpClass.RETURN, taken=True, target=target,
                   is_indirect=True)


def test_first_taken_branch_mispredicts_on_cold_btb():
    unit = BranchUnit()
    op = _branch(0x400000, True, 0x400800)
    pred = unit.predict(op)
    assert pred.mispredicted  # direction may be right; target is unknown
    unit.resolve(op, pred)
    # Re-training: same branch should now predict fully.
    for _ in range(4):
        pred = unit.predict(op)
        unit.resolve(op, pred)
    assert not unit.predict(op).mispredicted


def test_returns_predicted_by_ras():
    unit = BranchUnit()
    call = _call(0x400000, 0x400800)
    ret = _ret(0x400900, 0x400004)
    # Train the call target once.
    p = unit.predict(call)
    unit.resolve(call, p)
    p = unit.predict(ret)
    unit.resolve(ret, p)
    # Second round: call hits BTB, return pops the matching RAS entry.
    p = unit.predict(call)
    assert not p.mispredicted
    p = unit.predict(ret)
    assert not p.mispredicted
    assert p.pred_target == 0x400004


def test_ras_underflow_mispredicts_return():
    unit = BranchUnit()
    ret = _ret(0x400900, 0x400004)
    pred = unit.predict(ret)
    assert pred.mispredicted


def test_accuracy_counters():
    unit = BranchUnit()
    op = _branch(0x400000, True, 0x400800)
    for _ in range(10):
        pred = unit.predict(op)
        unit.resolve(op, pred)
    assert unit.predictions == 10
    assert 0.0 <= unit.mispredict_rate < 0.5


def test_history_advances_only_on_conditional_branches():
    unit = BranchUnit()
    before = unit.history
    call = _call(0x400000, 0x400800)
    unit.predict(call)
    assert unit.history == before
    br = _branch(0x400100, True, 0x400200)
    unit.predict(br)
    assert unit.history == ((before << 1) | 1) & ((1 << unit.config.history_bits) - 1)
