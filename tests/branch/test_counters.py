"""Saturating counter semantics, including the flat-table equivalence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch.counters import CounterTable, SaturatingCounter


class TestSaturatingCounter:
    def test_initial_state_is_weakly_not_taken(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 1
        assert not c.taken

    def test_saturates_high(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(True)
        assert c.value == 3
        assert c.taken

    def test_saturates_low(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(False)
        assert c.value == 0
        assert not c.taken

    def test_hysteresis(self):
        c = SaturatingCounter(bits=2, initial=3)
        c.update(False)
        assert c.taken  # one wrong outcome does not flip a strong state
        c.update(False)
        assert not c.taken

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=9)


class TestCounterTable:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CounterTable(num_entries=100)

    def test_indexing_wraps(self):
        t = CounterTable(16)
        assert t.index(16) == 0
        assert t.index(17) == 1

    @given(st.lists(st.booleans(), max_size=60), st.integers(0, 1 << 20))
    def test_matches_reference_counter(self, outcomes, key):
        """The flat int table behaves exactly like SaturatingCounter."""
        table = CounterTable(64, bits=2)
        ref = SaturatingCounter(bits=2)
        for taken in outcomes:
            assert table.predict(key) == ref.taken
            table.update(key, taken)
            ref.update(taken)
        assert table.predict(key) == ref.taken

    def test_entries_independent(self):
        t = CounterTable(8)
        for _ in range(4):
            t.update(0, True)
            t.update(1, False)
        assert t.predict(0)
        assert not t.predict(1)
