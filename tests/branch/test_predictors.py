"""Behavioural tests for bimodal, gshare, and the combined predictor."""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.combined import CombinedPredictor
from repro.branch.gshare import GsharePredictor


def _loop_stream(trip, repeats):
    """T^(trip-1) N, repeated: a fixed-trip-count loop branch."""
    pattern = [True] * (trip - 1) + [False]
    return pattern * repeats


class TestBimodal:
    def test_learns_biased_branch(self):
        p = BimodalPredictor(64)
        pc = 0x400100
        hits = 0
        for i in range(200):
            taken = i % 10 != 0  # 90% taken
            hits += p.predict(pc) == taken
            p.update(pc, taken)
        assert hits / 200 > 0.85

    def test_cannot_learn_loop_exit(self):
        p = BimodalPredictor(64)
        pc = 0x400104
        misses = 0
        stream = _loop_stream(5, 40)
        for taken in stream:
            misses += p.predict(pc) != taken
            p.update(pc, taken)
        # Bimodal should miss roughly every loop exit (1/5 of branches).
        assert misses >= len(stream) // 5 - 2


class TestGshare:
    def test_learns_loop_exit_with_history(self):
        p = GsharePredictor(1024, history_bits=8)
        pc = 0x400200
        history = 0
        stream = _loop_stream(5, 60)
        misses_late = 0
        for i, taken in enumerate(stream):
            pred = p.predict(pc, history)
            if i >= len(stream) // 2:
                misses_late += pred != taken
            p.update(pc, history, taken)
            history = ((history << 1) | taken) & 0xFF
        # After warmup, gshare predicts the exit from the history pattern.
        assert misses_late <= 2

    def test_distinct_histories_use_distinct_counters(self):
        p = GsharePredictor(1024, history_bits=4)
        pc = 0x400300
        for _ in range(8):
            p.update(pc, 0b0000, True)
            p.update(pc, 0b1111, False)
        assert p.predict(pc, 0b0000)
        assert not p.predict(pc, 0b1111)


class TestCombined:
    def test_selector_picks_gshare_for_loops(self):
        p = CombinedPredictor(256, 256, 256, history_bits=8)
        pc = 0x400400
        history = 0
        misses_late = 0
        stream = _loop_stream(4, 80)
        for i, taken in enumerate(stream):
            pred = p.predict(pc, history)
            if i >= len(stream) * 3 // 4:
                misses_late += pred != taken
            p.update(pc, history, taken)
            history = CombinedPredictor.shift_history(history, taken, 8)
        assert misses_late <= 2

    def test_selector_keeps_bimodal_for_biased(self):
        p = CombinedPredictor(256, 256, 256, history_bits=8)
        pc = 0x400500
        hits = 0
        for i in range(300):
            taken = True
            hits += p.predict(pc, i & 0xFF) == taken
            p.update(pc, i & 0xFF, taken)
        assert hits > 280

    def test_shift_history_masks(self):
        assert CombinedPredictor.shift_history(0xFFF, True, 12) == 0xFFF
        assert CombinedPredictor.shift_history(0b101, False, 3) == 0b010
