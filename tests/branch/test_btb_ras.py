"""BTB and RAS behaviour."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x400000) is None
        btb.install(0x400000, 0x400800)
        assert btb.lookup(0x400000) == 0x400800

    def test_update_changes_target(self):
        btb = BranchTargetBuffer(64, 4)
        btb.install(0x400000, 0x400800)
        btb.install(0x400000, 0x400900)
        assert btb.lookup(0x400000) == 0x400900

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(16, 2)  # 8 sets, 2-way
        sets = 8
        stride = sets * 4  # same set index
        pcs = [0x400000 + i * stride for i in range(3)]
        btb.install(pcs[0], 1)
        btb.install(pcs[1], 2)
        btb.lookup(pcs[0])  # touch pcs[0]: pcs[1] becomes LRU
        btb.install(pcs[2], 3)  # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 3

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # entry 1 was lost to overflow

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert len(ras) == 1
        assert ras.pop() == 1

    def test_snapshot_is_isolated(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        snap = ras.snapshot()
        snap.append(99)
        assert len(ras) == 1
