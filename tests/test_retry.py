"""The shared retry policy: schedule shape, loop semantics, typed
exhaustion.  Every loop test injects its own clock and sleep — nothing
here waits on real time."""

import pytest

from repro.retry import RetryExhausted, RetryPolicy, backoff_delay, call_with_retry


# ========================================================= backoff_delay


def test_backoff_is_deterministic():
    assert backoff_delay(3, 0.5, token="a|b") == backoff_delay(3, 0.5, token="a|b")


def test_backoff_grows_exponentially_within_jitter_band():
    base = 0.5
    for attempt in range(1, 6):
        raw = min(30.0, base * (2 ** (attempt - 1)))
        delay = backoff_delay(attempt, base, token="cell")
        assert raw / 2 <= delay <= raw


def test_backoff_caps():
    assert backoff_delay(50, 0.5, cap=4.0) <= 4.0


def test_backoff_spreads_across_tokens():
    # The jitter exists to fan a mass-failure round back in: distinct
    # tokens must not collapse onto one schedule.
    delays = {backoff_delay(1, 1.0, token=f"t{i}") for i in range(16)}
    assert len(delays) > 8


def test_backoff_clamps_nonpositive_attempt():
    assert backoff_delay(0, 0.5, token="x") == backoff_delay(1, 0.5, token="x")


def test_lease_module_reexports_the_same_function():
    # The pre-transport import sites (isolated-cell pool, broker) were
    # migrated onto repro.retry; the lease module's name must stay an
    # alias, not drift back into a second implementation.
    from repro.farm import lease

    assert lease.backoff_delay is backoff_delay


# ======================================================== call_with_retry


class _Fatal(Exception):
    pass


class _Transient(Exception):
    pass


class _FakeTime:
    """Deterministic clock+sleep pair: sleeping advances the clock."""

    def __init__(self):
        self.now = 0.0
        self.slept = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


def _flaky(failures, exc=_Transient):
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc(f"boom {state['calls']}")
        return state["calls"]

    fn.state = state
    return fn


def test_success_first_try_never_sleeps():
    fake = _FakeTime()
    result = call_with_retry(
        _flaky(0), policy=RetryPolicy(), retryable=lambda e: True,
        clock=fake.clock, sleep=fake.sleep,
    )
    assert result == 1
    assert fake.slept == []


def test_retries_then_succeeds_with_scheduled_delays():
    fake = _FakeTime()
    policy = RetryPolicy(base=0.5, cap=30.0)
    result = call_with_retry(
        _flaky(3), policy=policy, retryable=lambda e: isinstance(e, _Transient),
        token="w0|claim", clock=fake.clock, sleep=fake.sleep,
    )
    assert result == 4
    assert fake.slept == [policy.delay(n, token="w0|claim") for n in (1, 2, 3)]


def test_fatal_error_raises_immediately():
    fake = _FakeTime()
    fn = _flaky(5, exc=_Fatal)
    with pytest.raises(_Fatal):
        call_with_retry(
            fn, policy=RetryPolicy(),
            retryable=lambda e: isinstance(e, _Transient),
            clock=fake.clock, sleep=fake.sleep,
        )
    assert fn.state["calls"] == 1  # a verdict is never retried
    assert fake.slept == []


def test_attempt_budget_exhaustion_is_typed():
    fake = _FakeTime()
    with pytest.raises(RetryExhausted) as info:
        call_with_retry(
            _flaky(99), policy=RetryPolicy(max_attempts=3),
            retryable=lambda e: True, clock=fake.clock, sleep=fake.sleep,
        )
    exc = info.value
    assert exc.attempts == 3
    assert isinstance(exc.last, _Transient)
    assert exc.__cause__ is exc.last
    assert len(fake.slept) == 2  # the exhausted attempt does not sleep


def test_deadline_never_starts_a_crossing_sleep():
    fake = _FakeTime()
    policy = RetryPolicy(base=10.0, cap=30.0, deadline=15.0)
    with pytest.raises(RetryExhausted) as info:
        call_with_retry(
            _flaky(99), policy=policy, retryable=lambda e: True,
            token="t", clock=fake.clock, sleep=fake.sleep,
        )
    # Every sleep that was taken fit inside the deadline; the one that
    # would have crossed it was never started.
    assert fake.now <= 15.0
    assert "deadline" in str(info.value)
    assert info.value.elapsed <= 15.0


def test_deadline_zero_fails_after_single_attempt():
    fake = _FakeTime()
    with pytest.raises(RetryExhausted) as info:
        call_with_retry(
            _flaky(99), policy=RetryPolicy(base=0.1, deadline=0.0),
            retryable=lambda e: True, clock=fake.clock, sleep=fake.sleep,
        )
    assert info.value.attempts == 1
    assert fake.slept == []


def test_on_retry_observes_each_scheduled_retry():
    fake = _FakeTime()
    seen = []
    policy = RetryPolicy(base=0.25)
    call_with_retry(
        _flaky(2), policy=policy, retryable=lambda e: True, token="k",
        clock=fake.clock, sleep=fake.sleep,
        on_retry=lambda attempt, exc, delay: seen.append((attempt, str(exc), delay)),
    )
    assert [(a, d) for a, _, d in seen] == [
        (1, policy.delay(1, token="k")), (2, policy.delay(2, token="k"))]
    assert seen[0][1] == "boom 1"


def test_whole_loop_is_deterministic():
    def run():
        fake = _FakeTime()
        try:
            call_with_retry(
                _flaky(99), policy=RetryPolicy(base=0.5, max_attempts=6),
                retryable=lambda e: True, token="same",
                clock=fake.clock, sleep=fake.sleep,
            )
        except RetryExhausted:
            pass
        return fake.slept

    assert run() == run()
