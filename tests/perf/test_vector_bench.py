"""Schema-2 bench artifacts: the vector backend dimension, the ratio
gate, and the typed error for artifacts that predate the dimension."""

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    BackendDimensionMissing,
    compare_payloads,
    read_bench,
    run_bench,
    vector_ratio,
    write_bench,
)
from repro.perf.__main__ import main as perf_main

pytest.importorskip("numpy", reason="vector dimension needs numpy")

TINY_TRACE = {"benchmark": "gzip", "length": 120, "seed": 3, "warmup": 60}
TINY_COLUMN = (256, 288, 320)


@pytest.fixture(scope="module")
def payload():
    return run_bench(rounds=1, trace_spec=TINY_TRACE,
                     column_sizes=TINY_COLUMN)


def _schema1(payload):
    """The same measurements as a schema-1 artifact (no vector dim)."""
    import json

    old = json.loads(json.dumps(payload))
    old["schema"] = 1
    for cfg in old["configs"].values():
        cfg.pop("vector", None)
    return old


# ============================================================== bench


def test_vector_dimension_recorded(payload):
    assert payload["schema"] == BENCH_SCHEMA == 2
    for cfg in payload["configs"].values():
        vector = cfg["vector"]
        assert vector["lanes"] == list(TINY_COLUMN)
        assert vector["groups"] >= 1
        assert vector["forks"] >= 0
        assert vector["lane_cycles"] > vector["cycles_simulated"] > 0
        assert vector["speedup_ratio"] > 0
        # Both throughput figures count the same (scalar-equivalent)
        # work, so the ratio is exactly their quotient.
        quotient = vector["cycles_per_sec"] / vector["scalar_cycles_per_sec"]
        assert vector["speedup_ratio"] == pytest.approx(quotient)


def test_empty_column_sizes_skips_dimension():
    payload = run_bench(rounds=1, trace_spec=TINY_TRACE, column_sizes=())
    for cfg in payload["configs"].values():
        assert "vector" not in cfg


def test_schema2_round_trips(tmp_path, payload):
    path = str(tmp_path / "bench.json")
    write_bench(path, payload)
    back, meta = read_bench(path)
    assert meta.schema == 2
    assert back == payload


# ============================================================= compare


def test_schema1_baseline_still_compares(payload):
    result = compare_payloads(_schema1(payload), payload)
    assert result.ok
    assert any("no baseline ratio" in line for line in result.lines)


def test_ratio_column_shows_both_when_available(payload):
    result = compare_payloads(payload, payload)
    assert result.ok
    assert any("x -> " in line and "vector" in line for line in result.lines)


def test_min_ratio_gate_passes_and_fails(payload):
    assert compare_payloads(_schema1(payload), payload, min_ratio=0.01).ok
    failed = compare_payloads(_schema1(payload), payload, min_ratio=1e9)
    assert not failed.ok
    assert any(name.endswith(":vector-ratio") for name in failed.failures)
    assert any("RATIO BELOW GATE" in line for line in failed.lines)


def test_min_ratio_against_schema1_current_is_typed_error(payload):
    with pytest.raises(BackendDimensionMissing) as excinfo:
        compare_payloads(payload, _schema1(payload), min_ratio=1.0)
    assert excinfo.value.which == "current"
    assert "python -m repro.perf bench" in str(excinfo.value)


def test_vector_ratio_helper(payload):
    name = sorted(payload["configs"])[0]
    assert vector_ratio(payload, name, "current") > 0
    with pytest.raises(BackendDimensionMissing):
        vector_ratio(_schema1(payload), name, "baseline")


# ================================================================= CLI


def test_cli_min_ratio_gate_fails_loudly(tmp_path, payload, capsys):
    base = str(tmp_path / "base.json")
    cur = str(tmp_path / "cur.json")
    write_bench(base, _schema1(payload))
    write_bench(cur, payload)
    assert perf_main(["compare", base, cur]) == 0
    assert perf_main(["compare", base, cur, "--min-ratio", "0.01"]) == 0
    assert perf_main(["compare", base, cur, "--min-ratio", "1e9"]) == 1
    capsys.readouterr()
    # Gating a schema-1 *current* artifact: typed, actionable, exit 1.
    assert perf_main(["compare", cur, base, "--min-ratio", "1"]) == 1
    err = capsys.readouterr().err
    assert "no vector-backend dimension" in err
    assert "Traceback" not in err


def test_cli_bench_min_ratio(tmp_path, payload, monkeypatch, capsys):
    import repro.perf.__main__ as cli

    monkeypatch.setattr(cli, "run_bench", lambda rounds: payload)
    out = str(tmp_path / "b.json")
    assert perf_main(["bench", "--out", out, "--min-ratio", "0.01"]) == 0
    assert "vector:" in capsys.readouterr().out
    assert perf_main(["bench", "--out", out, "--min-ratio", "1e9"]) == 1
    assert "ratio gate FAILED" in capsys.readouterr().err
