"""Baseline selection: newest by recorded date, not by filename sort."""

import subprocess
import sys

from repro.perf.bench import latest_baseline, write_bench

PAYLOAD = {"schema": 2, "rounds": 1, "trace": {}, "configs": {}}


def _write(path, created):
    write_bench(str(path), {**PAYLOAD, "created": created})


def test_picks_newest_by_payload_date(tmp_path):
    _write(tmp_path / "BENCH_2025-03-01.json", "2025-03-01")
    _write(tmp_path / "BENCH_2025-12-31.json", "2025-12-31")
    _write(tmp_path / "BENCH_2026-01-02.json", "2026-01-02")
    assert latest_baseline(str(tmp_path)).endswith("BENCH_2026-01-02.json")


def test_payload_date_beats_lexical_filename_order():
    # The bug being fixed: `ls | sort | tail -1` trusts the filename.
    # A re-run stamped with a suffix sorts after the genuinely newer
    # file, and year rollovers in odd naming schemes sort wrong.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        import os
        _write(os.path.join(tmp, "BENCH_zzz-rerun.json"), "2025-01-01")
        _write(os.path.join(tmp, "BENCH_2026-01-01.json"), "2026-01-01")
        # Lexically "zzz" wins; by recorded date the 2026 artifact must.
        assert latest_baseline(tmp).endswith("BENCH_2026-01-01.json")


def test_same_date_breaks_tie_by_filename(tmp_path):
    _write(tmp_path / "BENCH_2026-01-01.json", "2026-01-01")
    _write(tmp_path / "BENCH_2026-01-01b.json", "2026-01-01")
    assert latest_baseline(str(tmp_path)).endswith("BENCH_2026-01-01b.json")


def test_skips_unreadable_and_foreign_files(tmp_path):
    _write(tmp_path / "BENCH_2025-01-01.json", "2025-01-01")
    (tmp_path / "BENCH_2099-01-01.json").write_text("not an envelope")
    (tmp_path / "notes.json").write_text("{}")
    assert latest_baseline(str(tmp_path)).endswith("BENCH_2025-01-01.json")


def test_empty_or_missing_directory(tmp_path):
    assert latest_baseline(str(tmp_path)) is None
    assert latest_baseline(str(tmp_path / "nope")) is None


def test_cli_prints_path_and_exit_codes(tmp_path):
    _write(tmp_path / "BENCH_2026-02-02.json", "2026-02-02")
    done = subprocess.run(
        [sys.executable, "-m", "repro.perf", "latest-baseline",
         str(tmp_path)],
        capture_output=True, text=True)
    assert done.returncode == 0
    assert done.stdout.strip().endswith("BENCH_2026-02-02.json")
    empty = subprocess.run(
        [sys.executable, "-m", "repro.perf", "latest-baseline",
         str(tmp_path / "missing")],
        capture_output=True, text=True)
    assert empty.returncode == 1


def test_committed_ci_baselines_are_selectable():
    # The repo's own benchmarks/ directory must always yield a baseline,
    # or the perf-regression job goes red on checkout.
    path = latest_baseline("benchmarks")
    assert path is not None and "BENCH_" in path
