"""Bench artifact schema: envelope round-trip, compare gating, and
corruption detection through the store's inject registry."""

import pytest

from repro.perf import (
    BENCH_KIND,
    BENCH_SCHEMA,
    compare_payloads,
    parse_threshold,
    read_bench,
    run_bench,
    write_bench,
)
from repro.perf.__main__ import main as perf_main
from repro.store import CORRUPTIONS, ArtifactError, corrupt

#: A tiny workload so bench runs are test-speed.
TINY_TRACE = {"benchmark": "gzip", "length": 120, "seed": 3, "warmup": 60}


def _payload(**overrides):
    """A synthetic schema-1 payload (no simulation needed)."""
    base = {
        "schema": BENCH_SCHEMA,
        "created": "2026-08-06",
        "python": "3.11.7",
        "platform": "test",
        "git_sha": "deadbeef",
        "peak_rss_kb": 100000,
        "rounds": 3,
        "trace": dict(TINY_TRACE),
        "configs": {
            "base": {
                "seconds": 0.050, "cycles": 4000, "instrs": 2000,
                "cycles_per_sec": 80000.0, "instrs_per_sec": 40000.0,
            },
            "pri": {
                "seconds": 0.060, "cycles": 3900, "instrs": 2000,
                "cycles_per_sec": 65000.0, "instrs_per_sec": 33333.0,
            },
        },
    }
    base.update(overrides)
    return base


def _scaled(payload, factor, configs=None):
    """Copy with every config's throughput multiplied by ``factor``."""
    out = _payload()
    out["configs"] = {}
    for name, cfg in payload["configs"].items():
        if configs is not None and name not in configs:
            continue
        cfg = dict(cfg)
        cfg["cycles_per_sec"] *= factor
        cfg["instrs_per_sec"] *= factor
        out["configs"][name] = cfg
    return out


class TestRoundTrip:
    def test_run_bench_payload_round_trips(self, tmp_path):
        payload = run_bench(rounds=1, trace_spec=TINY_TRACE)
        path = str(tmp_path / "BENCH_test.json")
        write_bench(path, payload)
        loaded, meta = read_bench(path)
        assert loaded == payload
        assert meta.kind == BENCH_KIND
        assert meta.schema == BENCH_SCHEMA
        assert not meta.legacy

    def test_payload_fields(self):
        payload = run_bench(rounds=1, trace_spec=TINY_TRACE)
        assert payload["schema"] == BENCH_SCHEMA
        assert set(payload["configs"]) == {"base", "pri"}
        for cfg in payload["configs"].values():
            assert cfg["instrs"] == TINY_TRACE["length"]
            assert cfg["cycles_per_sec"] > 0
            assert cfg["instrs_per_sec"] > 0
        assert payload["python"].count(".") == 2
        assert payload["trace"] == TINY_TRACE

    def test_plain_json_rejected(self, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text('{"configs": {}}')
        with pytest.raises(ArtifactError):
            read_bench(str(path))


class TestCompare:
    def test_improvement_passes(self):
        base = _payload()
        result = compare_payloads(base, _scaled(base, 1.5), threshold=0.15)
        assert result.ok

    def test_small_drop_passes(self):
        base = _payload()
        result = compare_payloads(base, _scaled(base, 0.90), threshold=0.15)
        assert result.ok

    def test_exact_threshold_drop_passes(self):
        base = _payload()
        result = compare_payloads(base, _scaled(base, 0.85), threshold=0.15)
        assert result.ok, result.lines

    def test_beyond_threshold_fails(self):
        base = _payload()
        result = compare_payloads(base, _scaled(base, 0.80), threshold=0.15)
        assert not result.ok
        assert set(result.failures) == {"base", "pri"}

    def test_single_config_regression_fails(self):
        base = _payload()
        cur = _scaled(base, 1.0)
        cur["configs"]["pri"]["cycles_per_sec"] *= 0.5
        result = compare_payloads(base, cur, threshold=0.15)
        assert result.failures == ["pri"]

    def test_missing_config_fails(self):
        base = _payload()
        result = compare_payloads(
            base, _scaled(base, 1.0, configs={"base"}), threshold=0.15
        )
        assert result.failures == ["pri"]

    def test_new_config_is_informational(self):
        base = _scaled(_payload(), 1.0, configs={"base"})
        result = compare_payloads(base, _payload(), threshold=0.15)
        assert result.ok

    def test_different_trace_not_comparable(self):
        base = _payload()
        cur = _payload(trace=dict(TINY_TRACE, length=999))
        result = compare_payloads(base, cur, threshold=0.15)
        assert not result.ok

    def test_parse_threshold(self):
        assert parse_threshold("15%") == pytest.approx(0.15)
        assert parse_threshold("0.15") == pytest.approx(0.15)
        assert parse_threshold(" 7.5% ") == pytest.approx(0.075)
        with pytest.raises(ValueError):
            parse_threshold("150%")
        with pytest.raises(ValueError):
            parse_threshold("-1%")


class TestCLI:
    def test_compare_exit_codes(self, tmp_path, capsys):
        base_path = str(tmp_path / "base.json")
        good_path = str(tmp_path / "good.json")
        bad_path = str(tmp_path / "bad.json")
        base = _payload()
        write_bench(base_path, base)
        write_bench(good_path, _scaled(base, 1.1))
        write_bench(bad_path, _scaled(base, 0.5))
        assert perf_main(["compare", base_path, good_path]) == 0
        assert perf_main(["compare", base_path, bad_path,
                          "--threshold", "15%"]) == 1
        # A generous threshold lets the same drop through.
        assert perf_main(["compare", base_path, bad_path,
                          "--threshold", "0.99"]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_compare_unreadable_artifact_fails(self, tmp_path, capsys):
        base_path = str(tmp_path / "base.json")
        write_bench(base_path, _payload())
        missing = str(tmp_path / "nope.json")
        with pytest.raises(FileNotFoundError):
            perf_main(["compare", base_path, missing])


class TestCorruption:
    """Every registered on-disk corruption must surface as a typed
    ArtifactError from read_bench, never as silently wrong numbers."""

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_detected(self, tmp_path, name):
        path = str(tmp_path / "BENCH_x.json")
        write_bench(path, _payload())
        if name == "tmp-leftover":
            pytest.skip("writer-leftover corruption targets a sibling file")
        try:
            corrupt(path, name)
        except ValueError:
            pytest.skip(f"{name} not applicable to this file size")
        with pytest.raises(ArtifactError):
            read_bench(path)
