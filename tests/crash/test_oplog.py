"""The recorder: what gets captured, normalized, and filtered."""

import os

from repro.crash import CrashRecorder
from repro.store import (
    atomic_write_bytes,
    create_exclusive_bytes,
    durable_replace,
    remove_file,
)


def test_atomic_write_records_write_fsync_rename_fsyncdir(tmp_path):
    root = str(tmp_path)
    with CrashRecorder(root) as rec:
        atomic_write_bytes(os.path.join(root, "a.json"), b"payload")
    kinds = [op.kind for op in rec.ops]
    assert kinds == ["write", "fsync", "rename", "fsync_dir"]
    write, _, rename, fsync_dir = rec.ops
    assert write.data == b"payload"
    assert write.path.endswith(".tmp")
    assert rename.dst == "a.json"
    assert fsync_dir.path == "" and not fsync_dir.skipped


def test_non_durable_write_has_no_barriers(tmp_path):
    root = str(tmp_path)
    with CrashRecorder(root) as rec:
        atomic_write_bytes(os.path.join(root, "a.json"), b"x", durable=False)
    assert [op.kind for op in rec.ops] == ["write", "rename"]


def test_create_exclusive_and_unlink_are_recorded(tmp_path):
    root = str(tmp_path)
    path = os.path.join(root, "x.lease")
    with CrashRecorder(root) as rec:
        assert create_exclusive_bytes(path, b"claim")
        assert not create_exclusive_bytes(path, b"rival")  # loser: no ops
        assert remove_file(path)
        assert not remove_file(path)
    assert [op.kind for op in rec.ops] == ["create", "write", "fsync",
                                           "unlink"]


def test_events_outside_root_are_dropped(tmp_path):
    root = str(tmp_path / "inside")
    os.makedirs(root)
    outside = str(tmp_path / "outside")
    os.makedirs(outside)
    with CrashRecorder(root) as rec:
        atomic_write_bytes(os.path.join(outside, "o.json"), b"x")
        atomic_write_bytes(os.path.join(root, "i.json"), b"y")
        # Rename leaving the root is dropped too: the model stays closed.
        durable_replace(os.path.join(root, "i.json"),
                        os.path.join(outside, "gone.json"))
    paths = {op.path for op in rec.ops} | {op.dst for op in rec.ops if op.dst}
    assert all("outside" not in p for p in paths)
    assert any(op.dst == "i.json" for op in rec.ops)


def test_ack_pseudo_ops_interleave_in_order(tmp_path):
    root = str(tmp_path)
    with CrashRecorder(root) as rec:
        atomic_write_bytes(os.path.join(root, "a.json"), b"1")
        rec.ack("first", value=1)
        atomic_write_bytes(os.path.join(root, "a.json"), b"2")
        rec.ack("second", value=2)
    acks = [(i, op) for i, op in enumerate(rec.ops) if op.kind == "ack"]
    assert [op.label for _, op in acks] == ["first", "second"]
    assert acks[0][0] == 4 and acks[1][0] == 9
    assert acks[0][1].info == {"value": 1}


def test_recorder_unsubscribes_on_exit(tmp_path):
    root = str(tmp_path)
    with CrashRecorder(root) as rec:
        pass
    atomic_write_bytes(os.path.join(root, "late.json"), b"x")
    assert rec.ops == []


def test_paths_are_root_relative_with_forward_slashes(tmp_path):
    root = str(tmp_path)
    os.makedirs(os.path.join(root, "leases"))
    with CrashRecorder(root) as rec:
        create_exclusive_bytes(os.path.join(root, "leases", "c.lease"), b"l")
    assert rec.ops[0].path == "leases/c.lease"
