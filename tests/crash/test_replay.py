"""The crash-state model: forcing rules, reorderings, tears."""

import os

from repro.crash import apply_ops, enumerate_states, forced_indices, materialize
from repro.crash.oplog import Op, STATEFUL


def _atomic_write(path, data, *, durable=True, tmp=None):
    tmp = tmp or path + ".123.tmp"
    ops = [Op("write", tmp, data=data)]
    if durable:
        ops.append(Op("fsync", tmp))
    ops.append(Op("rename", tmp, dst=path))
    if durable:
        ops.append(Op("fsync_dir", os.path.dirname(path) or ""))
    return ops


# ------------------------------------------------------------- forcing


def test_fsync_forces_prior_data_ops_on_that_path_only():
    ops = [
        Op("write", "a.tmp", data=b"A"),
        Op("write", "b.tmp", data=b"B"),
        Op("fsync", "a.tmp"),
    ]
    assert forced_indices(ops, 3) == {0}
    assert forced_indices(ops, 2) == set()


def test_fsync_dir_forces_metadata_in_that_directory():
    ops = [
        Op("create", "leases/c.lease"),
        Op("rename", "x.tmp", dst="a.json"),
        Op("unlink", "old.json"),
        Op("fsync_dir", ""),
    ]
    # Root-dir fsync forces the rename and the unlink, not the create
    # in leases/.
    assert forced_indices(ops, 4) == {1, 2}
    ops.append(Op("fsync_dir", "leases"))
    assert forced_indices(ops, 5) == {0, 1, 2}


def test_skipped_fsync_dir_forces_nothing():
    ops = [
        Op("rename", "x.tmp", dst="a.json"),
        Op("fsync_dir", "", skipped=True),
    ]
    assert forced_indices(ops, 2) == set()


def test_fsync_does_not_force_the_directory_entry():
    # The O_EXCL lease claim: payload fsynced, entry not — the file can
    # vanish wholesale (liveness), which is why claims are retried.
    ops = [
        Op("create", "c.lease"),
        Op("write", "c.lease", data=b"claim"),
        Op("fsync", "c.lease"),
    ]
    assert forced_indices(ops, 3) == {1}


def test_rename_forced_by_either_directory():
    ops = [
        Op("rename", "spool/x.tmp", dst="final/a.json"),
        Op("fsync_dir", "spool"),
    ]
    assert forced_indices(ops, 2) == {0}


# ------------------------------------------------------------ applying


def test_all_applied_reproduces_the_final_image():
    ops = _atomic_write("a.json", b"one") + _atomic_write("a.json", b"two")
    assert apply_ops(ops, len(ops)) == {"a.json": b"two"}


def test_dropped_rename_keeps_old_content_and_tmp_debris():
    ops = _atomic_write("a.json", b"one") \
        + _atomic_write("a.json", b"two", tmp="a.json.456.tmp")
    rename2 = next(i for i, op in enumerate(ops)
                   if op.kind == "rename" and op.path == "a.json.456.tmp")
    fs = apply_ops(ops, len(ops), drops=frozenset([rename2]))
    assert fs["a.json"] == b"one"
    assert fs["a.json.456.tmp"] == b"two"


def test_dropped_create_suppresses_later_data_to_that_path():
    ops = [
        Op("create", "c.lease"),
        Op("write", "c.lease", data=b"claim"),
        Op("fsync", "c.lease"),
    ]
    fs = apply_ops(ops, 3, drops=frozenset([0]))
    assert "c.lease" not in fs


def test_dropped_rename_suppresses_later_appends_to_destination():
    # journal._rewrite then appends: if the rename never persisted, the
    # appended lines are unreachable through the journal's name.
    ops = _atomic_write("journal.json", b"header\n") + [
        Op("append", "journal.json", data=b"line\n", offset=7),
        Op("fsync", "journal.json"),
    ]
    rename = next(i for i, op in enumerate(ops) if op.kind == "rename")
    fs = apply_ops(ops, len(ops), drops=frozenset([rename]))
    assert "journal.json" not in fs


def test_torn_append_keeps_prefix_at_recorded_offset():
    ops = [
        Op("write", "j", data=b"0123456789"),
        Op("append", "j", data=b"ABCDEF", offset=10),
    ]
    fs = apply_ops(ops, 2, tears={1: 3})
    assert fs["j"] == b"0123456789ABC"


def test_dropped_earlier_append_zero_fills_the_gap():
    ops = [
        Op("write", "j", data=b"hdr"),
        Op("append", "j", data=b"AA", offset=3),
        Op("append", "j", data=b"BB", offset=5),
    ]
    fs = apply_ops(ops, 3, drops=frozenset([1]))
    assert fs["j"] == b"hdr\x00\x00BB"


def test_dropped_unlink_keeps_the_file():
    ops = [Op("write", "x", data=b"v"), Op("unlink", "x")]
    assert apply_ops(ops, 2, drops=frozenset([1])) == {"x": b"v"}
    assert apply_ops(ops, 2) == {}


# ---------------------------------------------------------- enumeration


def test_enumeration_covers_extremes_and_single_faults():
    ops = _atomic_write("a.json", b"payload", durable=False)
    states = list(enumerate_states(ops))
    images = {tuple(sorted(s.fs.items())) for s in states}
    assert () in images                                   # nothing landed
    assert (("a.json", b"payload"),) in images            # all landed
    # rename without data: the classic rename-before-write image.
    assert (("a.json", b""),) in images


def test_durable_write_leaves_nothing_pending():
    ops = _atomic_write("a.json", b"payload", durable=True)
    k = len(ops)
    forced = forced_indices(ops, k)
    pending = [i for i in range(k)
               if ops[i].kind in STATEFUL and i not in forced]
    assert pending == []  # data forced by fsync, rename by fsync_dir
    assert apply_ops(ops, k) == {"a.json": b"payload"}


def test_states_are_deduplicated():
    ops = _atomic_write("a.json", b"xy", durable=True)
    states = list(enumerate_states(ops))
    digests = [s.digest() for s in states]
    assert len(digests) == len(set(digests))


def test_acked_tracks_crash_point():
    ops = [Op("write", "a", data=b"1"), Op("ack", label="one"),
           Op("write", "b", data=b"2"), Op("ack", label="two")]
    by_index = {}
    for state in enumerate_states(ops):
        by_index.setdefault(state.index, state)
    assert [op.label for op in by_index[1].acked] == []
    assert [op.label for op in by_index[2].acked] == ["one"]
    assert [op.label for op in by_index[4].acked] == ["one", "two"]


def test_materialize_roundtrip(tmp_path):
    fs = {"a.json": b"alpha", "leases/c.lease": b"claim", "empty": b""}
    materialize(fs, str(tmp_path / "scratch"))
    for rel, data in fs.items():
        with open(tmp_path / "scratch" / rel, "rb") as fh:
            assert fh.read() == data
