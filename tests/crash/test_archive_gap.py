"""Reverted-fix regression: the harness must catch the `_archive` gap.

`SweepJournal._archive` used to `os.replace` the incompatible journal
to its `.bak` name without fsyncing the directory, then report the
archive's path to the caller — so a crash in the window between that
return and the next directory fsync could resurrect the incompatible
journal and silently lose the acked archive.  The fix is
`durable_replace` (rename + directory fsync).

This test re-introduces the bug behind a monkeypatch and asserts the
crash harness *flags it* — proving the harness has the teeth to catch
this class of gap — then re-runs with the real implementation and
asserts the sweep is clean.  If a refactor ever quietly drops the
directory fsync again, `test_workload_recovers_from_every_crash_state`
goes red; if the harness ever quietly loses the ability to see the
gap, this test goes red.
"""

from repro.crash import WORKLOADS, run_harness
from repro.experiments.journal import SweepJournal
from repro.store.atomic import durable_replace


def _archive_without_dir_fsync(self, path, version):
    # The pre-fix behavior: rename reported as done, durability deferred
    # to whenever the next append happens to fsync the directory.
    self.archived = f"{path}.v{version}.bak"
    durable_replace(path, self.archived, durable=False)


def test_harness_flags_the_unfixed_archive_gap(tmp_path, monkeypatch):
    monkeypatch.setattr(SweepJournal, "_archive", _archive_without_dir_fsync)
    report = run_harness(WORKLOADS["journal-archive"], str(tmp_path))
    assert not report.clean, \
        "harness lost the ability to detect a non-durable archive rename"
    problems = "\n".join(v.problem for v in report.violations)
    assert "archive" in problems or "resurrected" in problems


def test_fixed_archive_survives_every_crash_state(tmp_path):
    report = run_harness(WORKLOADS["journal-archive"], str(tmp_path))
    assert report.clean, "\n".join(str(v) for v in report.violations[:10])
