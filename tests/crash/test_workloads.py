"""Every registered workload must survive its full crash-state sweep.

These are the CI teeth of the harness: each durability layer's real
write path, every enumerated power-loss state, recovery plus oracle.
A failure here is a crash-consistency bug in the layer (or a hole in
its recovery path), not a test flake — the whole pipeline is
deterministic.
"""

import pytest

from repro.crash import WORKLOADS, run_harness
from repro.crash.__main__ import main as crash_main

EXPECTED = {
    "farm-lease",
    "journal-append",
    "journal-archive",
    "serve-jobs",
    "server-fence",
    "snapshot-checkpoint",
    "store-envelope",
}


def test_registry_covers_every_durability_layer():
    assert set(WORKLOADS) == EXPECTED


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_workload_recovers_from_every_crash_state(name, tmp_path):
    report = run_harness(WORKLOADS[name], str(tmp_path))
    assert report.ops > 0, "workload recorded no I/O — observer hookup broken"
    assert report.states > report.crash_points // 2, \
        "suspiciously few states: enumeration is not exploring reorderings"
    assert report.clean, "\n".join(str(v) for v in report.violations[:10])


def test_cli_list_names_every_workload(capsys):
    assert crash_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED:
        assert name in out


def test_cli_run_smoke_limit(tmp_path, capsys):
    rc = crash_main(["run", "--workload", "store-envelope",
                     "--limit", "5", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "store-envelope" in out and "clean" in out
