"""Shared scaffolding for the chaos-style CI gates.

`ci_chaos_farm.py`, `ci_network_chaos.py`, and `ci_crash_consistency.py`
all follow the same shape — run something adversarial, compare against
a reference, fsck the debris, print FAIL lines, exit nonzero — and used
to carry three hand-rolled copies of the comparison/gate/report loops.
The helpers here are that shape, once:

* :func:`compare_matrix` — cell-by-cell bit-identity of a farmed sweep
  against its fault-free reference (lost and divergent cells);
* :func:`check_report` — the universal farm-report invariants
  (exactly-once completion, zero failed/divergent, optionally zero
  duplicates and no cold restarts);
* :func:`fsck_gate` — verify a root, print non-ok findings and the
  summary, append a failure when anything is unrepaired;
* :func:`report_failures` — print the FAIL lines (or the success
  message) and turn them into an exit status.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def compare_matrix(tag: str, benchmarks: Sequence[str],
                   schemes: Sequence[str], plain, farmed,
                   failures: List[str]) -> None:
    """Append a failure per lost or bit-divergent cell in ``farmed``."""
    prefix = f"{tag}: " if tag else ""
    for benchmark in benchmarks:
        for scheme in schemes:
            want = plain[benchmark][scheme]
            got = farmed[benchmark].get(scheme)
            if got is None or not hasattr(got, "to_dict"):
                failures.append(
                    f"{prefix}lost cell: {benchmark}/{scheme} -> {got!r}")
            elif got.to_dict() != want.to_dict():
                failures.append(
                    f"{prefix}divergent cell: {benchmark}/{scheme}")


def check_report(tag: str, report, failures: List[str], *,
                 duplicates_allowed: bool = True,
                 cold_restarts_allowed: bool = True) -> None:
    """The invariants every farm run owes, whatever the chaos plan."""
    prefix = f"{tag}: " if tag else ""
    print(f"[{tag}] farm report: {report.to_dict()}" if tag
          else f"farm report: {report.to_dict()}")
    if report.completed != report.cells:
        failures.append(
            f"{prefix}completed {report.completed}/{report.cells} cells")
    if report.failed:
        failures.append(f"{prefix}{report.failed} cell(s) marked failed")
    if report.divergent:
        failures.append(
            f"{prefix}{report.divergent} divergent duplicate(s): "
            f"{report.divergent_keys}")
    if not duplicates_allowed and report.duplicates:
        failures.append(f"{prefix}{report.duplicates} duplicate fold(s)")
    if not cold_restarts_allowed and report.cold_restarts:
        failures.append(
            f"{prefix}{report.cold_restarts} cell(s) restarted from cycle "
            "0 despite an existing checkpoint")


def fsck_gate(root: str, failures: List[str],
              tag: Optional[str] = None) -> None:
    """Verify ``root``; print the non-ok findings and the summary, and
    append one failure when unrepaired damage remains."""
    from repro.store.fsck import fsck_tree

    report = fsck_tree(root)
    for finding in report.findings:
        if finding.status != "ok":
            print(finding)
    print(f"[{tag}] {report.summary()}" if tag else report.summary())
    if report.unrepaired:
        where = f" on {tag}" if tag else ""
        failures.append(
            f"{tag + ': ' if tag else ''}fsck: {len(report.unrepaired)} "
            f"unrepaired problem(s){where}")


def report_failures(failures: List[str], success_message: str) -> int:
    """Print ``FAIL:`` lines (or the success message); 1 iff any."""
    for line in failures:
        print(f"FAIL: {line}")
    if not failures:
        print(success_message)
    return 1 if failures else 0
