#!/usr/bin/env python
"""Crash-consistency CI gate: every power-loss state must recover.

Runnable locally::

    PYTHONPATH=src python tools/ci_crash_consistency.py [DIR]

For every registered workload in :mod:`repro.crash.workloads` — the
envelope store, the sweep journal's append stream, checkpoint
write/retire, the farm lease protocol, the HTTP lease service's
fence/result state, and the incompatible-journal archive path — the
harness records the workload's op log, enumerates **all** reachable
crash states (no ``--limit`` smoke mode here), runs the owning layer's
recovery against each one, and applies the oracle: recovery terminates,
no acknowledged write is lost, no phantom state surfaces, fencing never
regresses, and the post-recovery tree passes ``fsck`` clean.

Exit status 0 when every state across every workload recovers, 1
otherwise.
"""

from __future__ import annotations

import os
import sys

from _chaos_common import report_failures


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    base = args[0] if args else "crash-consistency"

    from repro.crash import WORKLOADS, run_harness

    failures: list = []
    total_states = 0
    for name in sorted(WORKLOADS):
        report = run_harness(WORKLOADS[name], os.path.join(base, name))
        total_states += report.states
        verdict = "clean" if report.clean else (
            f"{len(report.violations)} VIOLATIONS")
        print(f"{name:<20} {report.ops:>3} ops  "
              f"{report.crash_points:>3} crash points  "
              f"{report.states:>4} states  {verdict}")
        for violation in report.violations[:10]:
            print(f"  {violation}")
        if not report.clean:
            failures.append(
                f"{name}: {len(report.violations)} crash state(s) did not "
                "recover clean")
        if report.states <= report.crash_points // 2:
            failures.append(
                f"{name}: only {report.states} states from "
                f"{report.crash_points} crash points — enumeration is not "
                "exploring reorderings")

    return report_failures(
        failures,
        f"crash-consistency invariants hold: {total_states} power-loss "
        f"states across {len(WORKLOADS)} durability layers, every one "
        "recovered with zero acked-data loss")


if __name__ == "__main__":
    sys.exit(main())
