#!/usr/bin/env python
"""Write one of every artifact kind, then fsck the tree.

The artifact-integrity CI job's round-trip check, extracted from an
inline workflow heredoc so it is lintable and runnable locally::

    PYTHONPATH=src python tools/ci_fsck_roundtrip.py [DIR]

Builds a fresh tree containing a trace, a machine snapshot, and a sweep
journal (every store-framed artifact family), then runs the fsck engine
over it.  Exit status 0 when the tree verifies clean, 1 otherwise.
"""

from __future__ import annotations

import os
import sys


def build_tree(root: str) -> None:
    """Write one artifact of each kind under ``root``."""
    from repro.core.snapshot import save_snapshot
    from repro.core.stats import SimStats
    from repro.experiments.journal import SweepJournal
    from repro.workloads.generator import generate_trace
    from repro.workloads.serialize import save_trace

    os.makedirs(root, exist_ok=True)
    save_trace(
        generate_trace("gzip", 200, seed=1, warmup=50),
        os.path.join(root, "gzip.trace"),
    )
    save_snapshot(
        {"config_digest": "ci", "rob": []}, os.path.join(root, "machine.ckpt")
    )
    journal = SweepJournal(os.path.join(root, "sweep.json"))
    journal.record_ok("cell-0", SimStats())


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = args[0] if args else "artifact-tree"
    build_tree(root)

    from repro.store.fsck import fsck_tree

    report = fsck_tree(root)
    for finding in report.findings:
        if finding.status != "ok":
            print(finding)
    print(report.summary())
    return 1 if report.unrepaired else 0


if __name__ == "__main__":
    sys.exit(main())
