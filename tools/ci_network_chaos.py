#!/usr/bin/env python
"""Drive a sweep over the HTTP lease transport under wire faults.

The network-chaos CI job's end-to-end check, runnable locally::

    PYTHONPATH=src python tools/ci_network_chaos.py [DIR]

Runs a small (benchmark x scheme) matrix three ways: plainly, through
an in-process HTTP lease service (:mod:`repro.farm.server`) on a clean
wire, and again while :mod:`repro.farm.inject` drops, delays,
disconnects, duplicates, and stale-replays individual RPCs — including
a mid-sweep partition that forces one worker to exhaust its retry
deadline, park its cell, and exit typed.  The run fails if:

* any cell is **lost** or its stats differ from the fault-free run
  bit-for-bit, on either the clean or the chaotic wire;
* any completion is folded **twice** (the fencing tokens and idempotent
  request ids must keep aggregation exactly-once — over HTTP, zombie
  writes are rejected server-side, so even ``duplicates`` must be 0);
* the partitioned sweep does not **degrade gracefully** (the parked
  worker must be respawned and its lease reclaimed);
* the lease server's root does not verify under ``fsck`` (its cells,
  leases, and results are the same checksummed envelopes the
  filesystem transport writes).

Exit status 0 when every invariant holds, 1 otherwise.
"""

from __future__ import annotations

import os
import sys

from _chaos_common import (
    check_report,
    compare_matrix,
    fsck_gate,
    report_failures,
)

BENCHMARKS = ("gcc", "mesa")
SCHEMES = ("base", "ER", "PRI-refcount+ckptcount")
INJECT = (
    "net-drop:worker=0:op=claim:seq=0:count=2",      # routing hole
    "net-disconnect:worker=0:op=complete:seq=0:count=1",  # torn connection
    "net-duplicate:worker=1:op=claim:seq=0:count=1",      # double delivery
    "net-delay:worker=1:op=heartbeat:seq=2:count=3:delay=0.2",
    "net-stale:worker=0:op=heartbeat:seq=3:count=1",      # proxy replay
)
PARTITION = ("net-drop:worker=0:op=heartbeat:seq=2:count=100000",)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    base = args[0] if args else "network-chaos"

    from repro.experiments import RunSpec, run_matrix
    from repro.farm import FarmSpec
    from repro.farm.server import FarmServer

    spec = RunSpec(length=400, warmup=800, seed=3)
    print(f"fault-free reference: {len(BENCHMARKS) * len(SCHEMES)} cells")
    plain = run_matrix(BENCHMARKS, SCHEMES, 4, spec)
    failures: list = []

    runs = (
        ("clean-http", (), 8.0),
        ("wire-chaos", INJECT, 8.0),
        ("partition", PARTITION, 1.5),
    )
    for tag, inject, rpc_deadline in runs:
        server_root = os.path.join(base, f"{tag}-server")
        server = FarmServer(server_root).start()
        try:
            farm = FarmSpec(
                root=os.path.join(base, f"{tag}-broker"), workers=2,
                endpoint=server.url, rpc_timeout=5.0,
                rpc_deadline=rpc_deadline, lease_ttl=1.5,
                heartbeat_interval=0.1, poll_interval=0.05,
                checkpoint_every=150, grace=5.0, inject=inject,
            )
            print(f"[{tag}] lease service at {server.url}, "
                  f"{len(inject)} wire fault(s)")
            farmed = run_matrix(BENCHMARKS, SCHEMES, 4, spec, farm=farm,
                                retries=4)
        finally:
            server.stop()
        compare_matrix(tag, BENCHMARKS, SCHEMES, plain, farmed, failures)
        check_report(tag, farm.report, failures, duplicates_allowed=False)
        if tag == "partition":
            if farm.report.respawns < 1:
                failures.append(
                    f"{tag}: partitioned worker was never respawned")
            if farm.report.reclaims < 1:
                failures.append(
                    f"{tag}: partitioned cell was never reclaimed")
        fsck_gate(server_root, failures, tag=tag)

    return report_failures(
        failures,
        "network-chaos invariants hold: bit-identical folds on a "
        "clean and a faulty wire, exactly-once aggregation, "
        "graceful degradation under partition, clean fsck")


if __name__ == "__main__":
    sys.exit(main())
