#!/usr/bin/env python
"""CI gate: the simulation service under concurrency and SIGKILL.

Boots the *real* server (``python -m repro.serve serve``, a separate
process), then drives the service-level contract end to end:

1. **Dedup + cache.**  N concurrent duplicate submissions plus distinct
   ones: every duplicate must collapse to one job id and one simulation;
   a re-submission must be answered from the cache; and both answers —
   and the server's answer vs. an in-process reference simulation — must
   be bit-identical.
2. **SIGKILL mid-queue.**  A second wave of jobs is acked, the server is
   SIGKILLed before they finish, and a fresh process takes over the same
   root: every acked job must reach ``done``, nothing acked may be lost,
   and nothing already cached may be simulated again.
3. **fsck.**  Whatever the kill left behind, the state tree must verify
   clean (after the restarted server's own recovery).

Exit 0 iff every assertion holds.  Scratch state lives under
``--scratch`` (default: a temp dir) so a red run can upload it as a CI
artifact.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _chaos_common import fsck_gate, report_failures  # noqa: E402

from repro.serve import JobSpec, ServeClient, ServeUnavailable  # noqa: E402

#: The workload axes: small enough for CI, wide enough to exercise
#: batching (distinct benchmarks) and coalescing (a regs sweep).
_BASE = {"benchmark": "gzip", "scheme": "PRI-refcount+lazy", "width": 4,
         "length": 1200, "warmup": 2500, "seed": 7}
_DISTINCT = [
    {**_BASE, "benchmark": "mcf"},
    {**_BASE, "scheme": "base"},
    {**_BASE, "regs": 56},
    {**_BASE, "regs": 72},
]
_WAVE2 = [
    {**_BASE, "benchmark": "swim"},
    {**_BASE, "benchmark": "mcf", "scheme": "base"},
    {**_BASE, "regs": 64},
]
_DUPLICATES = 8
_DEADLINE = 120.0


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(root: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "serve", root,
         "--port", str(port), "--batch-window", "0.1"],
        env=env, cwd=REPO,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_ping(client: ServeClient, deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            client.ping()
            return
        except ServeUnavailable:
            time.sleep(0.1)
    raise RuntimeError("server did not come up")


def _reference_stats(job: Dict) -> Dict:
    """The job simulated in-process — the gauntlet's own ground truth,
    independent of the server's backend choice."""
    from repro.core.machine import Machine
    from repro.workloads import generate_trace

    spec = JobSpec(**job)
    trace = generate_trace(spec.benchmark, spec.length, seed=spec.seed,
                           warmup=spec.warmup)
    return Machine(spec.config()).run(trace).to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scratch", default=None,
                        help="state directory (kept for artifact upload)")
    args = parser.parse_args(argv)
    scratch = args.scratch or tempfile.mkdtemp(prefix="service-gauntlet-")
    root = os.path.join(scratch, "serve")
    os.makedirs(root, exist_ok=True)
    failures: List[str] = []

    # ------------------------------------------------- phase 1: dedup
    port = _free_port()
    proc = _spawn(root, port)
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=15.0)
    try:
        _wait_ping(client)
        responses: List[Dict] = []

        def submit_duplicate() -> None:
            responses.append(client.submit(dict(_BASE)))

        threads = [threading.Thread(target=submit_duplicate)
                   for _ in range(_DUPLICATES)]
        for thread in threads:
            thread.start()
        distinct_ids = [client.submit(job)["id"] for job in _DISTINCT]
        for thread in threads:
            thread.join()
        dup_ids = {r["id"] for r in responses}
        if len(dup_ids) != 1:
            failures.append(f"duplicate submissions got {len(dup_ids)} ids")
        base_id = responses[0]["id"]
        wave1 = [base_id] + distinct_ids
        for job_id in wave1:
            record = client.wait(job_id, timeout=_DEADLINE)
            if record.get("state") != "done":
                failures.append(f"wave-1 job {job_id} ended {record}")
        metrics = client.metrics()
        print(f"[phase 1] metrics: simulations={metrics['simulations']} "
              f"dedup={metrics['inflight_dedup']} "
              f"cache_hits={metrics['cache_hits']} "
              f"batches={metrics['batches']}")
        expected = len(set(wave1))
        if metrics["simulations"] != expected:
            failures.append(
                f"expected {expected} simulations for {expected} distinct "
                f"jobs, server ran {metrics['simulations']} — duplicates "
                f"were not deduplicated")
        if metrics["inflight_dedup"] + metrics["cache_hits"] < _DUPLICATES - 1:
            failures.append(
                f"only {metrics['inflight_dedup']} dedups + "
                f"{metrics['cache_hits']} cache hits for "
                f"{_DUPLICATES} duplicate submissions")

        # Cold-miss answer vs. in-process reference: bit-identical.
        cold = client.result(base_id)["stats"]
        reference = _reference_stats(_BASE)
        if cold != reference:
            failures.append("cold-miss stats diverge from the in-process "
                            "reference simulation")
        # Cache-hit answer vs. cold-miss answer: bit-identical.
        resubmit = client.submit(dict(_BASE))
        if not resubmit.get("cached"):
            failures.append(f"re-submission was not a cache hit: {resubmit}")
        if client.result(resubmit["id"])["stats"] != cold:
            failures.append("cache-hit stats diverge from cold-miss stats")

        # -------------------------------- phase 2: SIGKILL mid-queue
        acked = [client.submit(job)["id"] for job in _WAVE2]
        print(f"[phase 2] acked {len(acked)} jobs, SIGKILLing the server")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(30)

    # ------------------------------------------------ phase 3: restart
    port = _free_port()
    proc = _spawn(root, port)
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=15.0)
    try:
        _wait_ping(client)
        for job_id in acked:
            record = client.wait(job_id, timeout=_DEADLINE)
            if record.get("state") != "done":
                failures.append(
                    f"acked job {job_id} lost across SIGKILL: {record}")
        metrics = client.metrics()
        print(f"[phase 3] metrics: recovered={metrics['recovered_jobs']} "
              f"simulations={metrics['simulations']}")
        # Everything cached before the kill must answer from cache: the
        # restarted process may only simulate what never finished.
        before = metrics["simulations"]
        for job in [dict(_BASE)] + _DISTINCT:
            response = client.submit(job)
            if response.get("state") != "done":
                failures.append(
                    f"pre-kill job {response.get('id')} not answered from "
                    f"cache after restart: {response}")
        after = client.metrics()
        if after["simulations"] != before:
            failures.append(
                f"restart re-simulated {after['simulations'] - before} "
                f"already-cached job(s)")
        stats = client.result(client.submit(dict(_BASE))["id"])["stats"]
        if stats != _reference_stats(_BASE):
            failures.append("post-restart cached stats diverge from the "
                            "in-process reference")
    finally:
        proc.terminate()
        try:
            proc.wait(30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(30)

    fsck_gate(root, failures, tag="serve root")
    return report_failures(
        failures,
        f"service gauntlet passed: {_DUPLICATES} duplicates -> 1 "
        f"simulation, SIGKILL lost nothing, cache answers bit-identical "
        f"(state: {scratch})")


if __name__ == "__main__":
    sys.exit(main())
