#!/usr/bin/env python
"""Drive a sweep through the farm under continuous fault injection.

The chaos CI job's end-to-end check, extracted from an inline workflow
heredoc so it is lintable and runnable locally::

    PYTHONPATH=src python tools/ci_chaos_farm.py [DIR]

Runs a small (benchmark x scheme) matrix twice: once plainly, once
through the lease-based farm (:mod:`repro.farm`) while
:mod:`repro.farm.inject` SIGKILLs one worker mid-cell, stalls another's
heartbeats, spot-evicts a third with SIGTERM, and makes a fourth shed
its lease and finish as a zombie (double-lease).  The run fails if:

* any cell is **lost** (farm result missing or marked failed);
* any cell is **duplicated divergently** (two completions whose
  SimStats differ bit-for-bit);
* any cell **diverges** from the fault-free run;
* any reclaimed cell **cold-restarts** when a checkpoint existed;
* the farm root (journal with lease records, cell/lease/result
  envelopes, checkpoints) does not verify under ``fsck``.

Exit status 0 when every invariant holds, 1 otherwise.
"""

from __future__ import annotations

import sys

from _chaos_common import (
    check_report,
    compare_matrix,
    fsck_gate,
    report_failures,
)

BENCHMARKS = ("gcc", "mesa")
SCHEMES = ("base", "ER", "PRI-refcount+ckptcount")
INJECT = (
    "kill:worker=0:cell=0:cycles=400",          # SIGKILL mid-cell
    "stall:worker=1:cell=0:cycles=200",         # wedged heartbeats
    "evict:worker=2:cell=0:cycles=300",         # spot eviction (SIGTERM)
    "double-lease:worker=3:cell=0:cycles=200",  # zombie duplicate
)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = args[0] if args else "chaos-farm"

    from repro.experiments import RunSpec, run_matrix
    from repro.farm import FarmSpec

    spec = RunSpec(length=400, warmup=800, seed=3)
    print(f"fault-free reference: {len(BENCHMARKS) * len(SCHEMES)} cells")
    plain = run_matrix(BENCHMARKS, SCHEMES, 4, spec)

    farm = FarmSpec(
        root=root, workers=2, lease_ttl=1.5, heartbeat_interval=0.1,
        poll_interval=0.05, checkpoint_every=150, grace=5.0, inject=INJECT,
    )
    print(f"chaos run: injecting {len(INJECT)} faults: "
          + ", ".join(p.split(":", 1)[0] for p in INJECT))
    farmed = run_matrix(BENCHMARKS, SCHEMES, 4, spec, farm=farm, retries=4)
    report = farm.report

    failures: list = []
    compare_matrix("", BENCHMARKS, SCHEMES, plain, farmed, failures)
    # On the filesystem backend a zombie's bit-identical duplicate is
    # allowed on disk (the broker verifies and drops it at fold time),
    # but a cold restart past an existing checkpoint is not.
    check_report("", report, failures, duplicates_allowed=True,
                 cold_restarts_allowed=False)
    if report.reclaims + report.evictions < 2:
        failures.append(
            "chaos did not bite: expected at least two reclaims/evictions, "
            f"got reclaims={report.reclaims} evictions={report.evictions}"
        )
    fsck_gate(root, failures)

    return report_failures(
        failures,
        "chaos invariants hold: exactly-once completion, zero lost "
        "work, resume-not-restart, clean fsck")


if __name__ == "__main__":
    sys.exit(main())
