"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so the
PEP-517 editable-install path (which builds a wheel) cannot run.  With
this shim and no ``[build-system]`` table in pyproject.toml, pip falls
back to ``setup.py develop``, which works offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
